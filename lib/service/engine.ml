module Runner = Gus_sql.Runner

type t = {
  catalog : Catalog.t;
  cache : Runner.response Cache.t;
  prepared : (string, Prepared.t) Hashtbl.t;
  pool : Gus_util.Pool.t option;
  mutable next_handle : int;
}

exception Unknown_handle of string

let create ?(cache_capacity = 128) ?pool () =
  let t =
    { catalog = Catalog.create ();
      cache = Cache.create ~capacity:cache_capacity;
      prepared = Hashtbl.create 16;
      pool;
      next_handle = 1 }
  in
  (* Eager invalidation: any (re)registration or removal drops the
     dataset's cached responses.  The version baked into every key
     already makes stale entries unreachable; this frees their slots. *)
  Catalog.on_mutate t.catalog (fun name ->
      ignore (Cache.remove_prefix t.cache ~prefix:(name ^ "\x00")));
  t

let catalog t = t.catalog
let register t ~name ~source = Catalog.load t.catalog ~name ~source
let register_db t ~name ~source db = Catalog.register t.catalog ~name ~source db

let prepare t ?name ~dataset sql =
  let p = Prepared.prepare t.catalog ~dataset sql in
  let name =
    match name with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "q%d" t.next_handle in
        t.next_handle <- t.next_handle + 1;
        n
  in
  Hashtbl.replace t.prepared name p;
  (name, p)

let find_prepared t name = Hashtbl.find_opt t.prepared name

let prepared_names t =
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.prepared []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cache_key t p (ov : Prepared.overrides) =
  let entry = Catalog.find_exn t.catalog (Prepared.dataset p) in
  let rates =
    List.sort (fun (a, _) (b, _) -> compare a b) ov.Prepared.rates
    |> List.map (fun (rel, rate) ->
           Printf.sprintf "%s:%s" rel (Json.number_to_string rate))
    |> String.concat ","
  in
  Printf.sprintf "%s\x00%d\x00%s\x00seed=%d;exact=%b;rates=%s"
    entry.Catalog.dataset entry.Catalog.version (Prepared.sql p)
    ov.Prepared.seed ov.Prepared.exact rates

type outcome = {
  response : Runner.response;
  cached : bool;
  wall_ns : int;
}

let now = Gus_obs.Trace.now_ns
let cacheable (ov : Prepared.overrides) = not ov.Prepared.explain

let execute t ~handle ov =
  let t0 = now () in
  let p =
    match find_prepared t handle with
    | Some p -> p
    | None -> raise (Unknown_handle handle)
  in
  ignore (Prepared.refresh t.catalog p);
  let key = if cacheable ov then Some (cache_key t p ov) else None in
  match Option.map (Cache.find t.cache) key with
  | Some (Some response) -> { response; cached = true; wall_ns = now () - t0 }
  | _ ->
      let response = Prepared.execute t.catalog p ov in
      Option.iter (fun k -> Cache.add t.cache k response) key;
      { response; cached = false; wall_ns = now () - t0 }

let batch t items =
  (* Phase 1, driving thread: resolve, refresh, probe the cache — every
     handle mutation and cache touch happens here, in submission order. *)
  let staged =
    Array.map
      (fun (handle, ov) ->
        match find_prepared t handle with
        | None -> Error (Unknown_handle handle)
        | Some p -> (
            try
              ignore (Prepared.refresh t.catalog p);
              match
                if cacheable ov then
                  let key = cache_key t p ov in
                  match Cache.find t.cache key with
                  | Some response -> `Hit response
                  | None -> `Run (Some key)
                else `Run None
              with
              | `Hit response -> Ok (`Hit response)
              | `Run key -> Ok (`Run (p, ov, key))
            with e -> Error e))
      items
  in
  (* Phase 2: fan the misses out; lanes only read engine state. *)
  let misses =
    Array.of_list
      (List.filter_map
         (function Ok (`Run job) -> Some job | _ -> None)
         (Array.to_list staged))
  in
  let results =
    Scheduler.map ?pool:t.pool
      (fun (p, ov, key) ->
        let t0 = now () in
        let response = Prepared.execute t.catalog p ov in
        (key, response, now () - t0))
      misses
  in
  (* Phase 3, driving thread again: fill the cache and assemble outcomes
     in submission order. *)
  let cursor = ref 0 in
  Array.map
    (fun stage ->
      match stage with
      | Error e -> Error e
      | Ok (`Hit response) -> Ok { response; cached = true; wall_ns = 0 }
      | Ok (`Run _) -> (
          let r = results.(!cursor) in
          incr cursor;
          match r with
          | Error e -> Error e
          | Ok (key, response, wall_ns) ->
              Option.iter (fun k -> Cache.add t.cache k response) key;
              Ok { response; cached = false; wall_ns }))
    staged

let cache_length t = Cache.length t.cache
let cache_capacity t = Cache.capacity t.cache
