(** Static cost/variance model over an SOA-rewritten plan.

    Everything here is a pure function of the GUS design (and the
    {!Dataflow} facts for group-count estimation) — no data access.

    {b Skip-mask.}  A relation is {e design-inert} when the
    second-order probabilities ignore it: [b_{T∪{i}} = b_T] for all
    [T] — the Prop.-6 product-form factor of an unsampled relation (or
    a p = 1 Bernoulli) satisfies φ(1) = φ(0).  Every coefficient [c_S]
    with [S] touching an inert relation is provably zero, and — because
    the fast Möbius transform subtracts bit-equal floats — {e exactly}
    [0.0] in floating point.  {!skip_mask} returns the inert-relation
    bitmask only after verifying that bit-exactness against the actual
    coefficient array, so consumers ({!Gus_estimator.Moments}) may skip
    those moment passes with bit-identical results on the remaining
    entries. *)

type report = {
  n_rels : int;
  passes : int;  (** total moment passes: 2ⁿ − 1 *)
  skipped : int;  (** passes with provably-zero coefficients *)
  est_groups : float;  (** expected lineage-group count (≥ 1) *)
  predicted_cost : float;  (** (passes − skipped) · est_groups *)
  variance_bound : float;
      (** Theorem-1 worst case for f ≥ 0:
          [Var/E² ≤ Σ_S max(0, c_S)/a² − 1]; [infinity] when [a = 0] *)
  skip_mask : int;  (** verified inert-relation bitmask (0 = none) *)
  cls : Absdom.Cls.t;  (** GUS class of the overall design *)
}

val skip_mask : Gus_core.Gus.t -> int
(** Verified inert-relation bitmask: mask [s] of the moments kernel can
    be skipped iff [s land skip_mask <> 0].  Returns 0 (skip nothing)
    unless every skippable coefficient is exactly [0.0]. *)

val variance_bound : Gus_core.Gus.t -> float

val analyze : facts:Dataflow.table -> Gus_core.Gus.t -> report
(** Requires the facts of the {e same} plan the GUS was rewritten from
    (only the root fact is consulted). *)

val analyze_sym : facts:Dataflow.table -> Gus_core.Symalg.t -> report
(** {!analyze} computed from the symbolic sum-of-products form without
    enumerating [2^n] anywhere: the skip-mask comes from the structural
    live mask (dead factor ⇒ bit-equal dense entries ⇒ exact-zero
    coefficients), and the variance bound either enumerates coefficients
    over the {e projected} live universe (small live sets — bit-identical
    to {!analyze}'s bound) or collapses to the closed form
    [Σ c_S⁺ = a] for provably-nonnegative designs.  Dense-fallback
    representations delegate to {!analyze}. *)

val pp : Format.formatter -> report -> unit
