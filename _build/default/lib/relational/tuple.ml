type t = {
  values : Value.t array;
  lineage : Lineage.t;
}

let make values lineage = { values; lineage }
let value t i = t.values.(i)

let concat a b =
  { values = Array.append a.values b.values;
    lineage = Lineage.concat a.lineage b.lineage }

let with_values t values = { t with values }

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_display t.values)))
