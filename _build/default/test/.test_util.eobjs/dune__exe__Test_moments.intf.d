test/test_moments.mli:
