lib/relational/expr.mli: Format Schema Tuple Value
