(* Tests for the SOA rewriter: sampler translation, commutation rules,
   union of samples, unsupported cases, and the plan AST itself. *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sampler = Gus_sampling.Sampler
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

let card = function
  | "r" -> 100
  | "s" -> 1000
  | "t" -> 50
  | "lineitem" -> 6000000
  | "orders" -> 150000
  | other -> invalid_arg other

let b01 = Sampler.Bernoulli 0.1
let b05 = Sampler.Bernoulli 0.5

let join l r = Splan.Equi_join { left = l; right = r;
                                 left_key = Expr.col "k"; right_key = Expr.col "k" }

(* ---- Splan basics ---- *)

let test_lineage_schema () =
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s") in
  check (Alcotest.list Alcotest.string) "schema" [ "r"; "s" ]
    (Array.to_list (Splan.lineage_schema plan));
  check (Alcotest.list Alcotest.string) "relations" [ "r"; "s" ]
    (Splan.relations plan)

let test_strip_samples () =
  let plan =
    Splan.Select
      (Expr.bool true, join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s"))
  in
  let stripped = Splan.strip_samples plan in
  check_bool "no samples left" true
    (Splan.equal stripped
       (Splan.Select (Expr.bool true, join (Splan.Scan "r") (Splan.Scan "s"))))

let test_plan_equal () =
  let p1 = Splan.Sample (b01, Splan.Scan "r") in
  let p2 = Splan.Sample (b01, Splan.Scan "r") in
  let p3 = Splan.Sample (b05, Splan.Scan "r") in
  check_bool "equal" true (Splan.equal p1 p2);
  check_bool "not equal" false (Splan.equal p1 p3)

let test_self_join_lineage_overlap () =
  let plan = join (Splan.Scan "r") (Splan.Scan "r") in
  check_bool "self-join overlap" true
    (try ignore (Splan.lineage_schema plan); false with Lineage.Overlap _ -> true)

(* ---- sampler translation ---- *)

let test_translate_bernoulli_base () =
  let g = Rewrite.sampler_gus ~card ~over:[| "r" |] ~input:Gus_analysis.Lint.Over_scan b01 in
  check_bool "bernoulli" true (Gus.equal_approx g (Gus.bernoulli ~rel:"r" 0.1))

let test_translate_wor_base () =
  let g = Rewrite.sampler_gus ~card ~over:[| "r" |] ~input:Gus_analysis.Lint.Over_scan (Sampler.Wor 10) in
  check_bool "wor uses catalog card" true
    (Gus.equal_approx g (Gus.wor ~rel:"r" ~n:10 ~out_of:100))

let test_translate_block () =
  let g =
    Rewrite.sampler_gus ~card ~over:[| "r" |] ~input:Gus_analysis.Lint.Over_scan
      (Sampler.Block { rows_per_block = 10; p = 0.3 })
  in
  check_bool "block = Bernoulli at block granularity" true
    (Gus.equal_approx g (Gus.bernoulli ~rel:"r" 0.3))

let test_translate_hash () =
  let g =
    Rewrite.sampler_gus ~card ~over:[| "r" |] ~input:Gus_analysis.Lint.Over_scan
      (Sampler.Hash_bernoulli { seed = 1; p = 0.2 })
  in
  check_bool "hash bernoulli" true (Gus.equal_approx g (Gus.bernoulli ~rel:"r" 0.2))

let test_translate_bernoulli_derived () =
  let g =
    Rewrite.sampler_gus ~card ~over:[| "r"; "s" |]
      ~input:Gus_analysis.Lint.Over_random b01
  in
  check_bool "derived bernoulli" true
    (Gus.equal_approx g (Gus.bernoulli_over [| "r"; "s" |] 0.1))

let unsupported f = try ignore (f ()); false with Rewrite.Unsupported _ -> true

let test_translate_unsupported () =
  check_bool "WR" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r" |] ~input:Gus_analysis.Lint.Over_scan (Sampler.Wr 5)));
  check_bool "WOR over derived" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r"; "s" |]
           ~input:Gus_analysis.Lint.Over_random (Sampler.Wor 5)));
  check_bool "WOR over sampled base" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r" |]
           ~input:Gus_analysis.Lint.Over_random (Sampler.Wor 5)));
  check_bool "WOR over fixed derived (GUS018)" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r" |]
           ~input:Gus_analysis.Lint.Over_fixed (Sampler.Wor 5)));
  check_bool "WOR over preserving projection is fine" true
    (Gus.equal_approx
       (Rewrite.sampler_gus ~card ~over:[| "r" |]
          ~input:Gus_analysis.Lint.Over_preserving (Sampler.Wor 10))
       (Gus.wor ~rel:"r" ~n:10 ~out_of:100));
  check_bool "block over derived" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r"; "s" |]
           ~input:Gus_analysis.Lint.Over_random
           (Sampler.Block { rows_per_block = 2; p = 0.5 })));
  check_bool "hash over derived" true
    (unsupported (fun () ->
         Rewrite.sampler_gus ~card ~over:[| "r"; "s" |]
           ~input:Gus_analysis.Lint.Over_random
           (Sampler.Hash_bernoulli { seed = 1; p = 0.5 })))

(* ---- analyze ---- *)

let test_analyze_scan_is_identity () =
  let r = Rewrite.analyze ~card (Splan.Scan "r") in
  check_bool "identity" true (Gus.equal_approx (Lazy.force r.Rewrite.gus) (Gus.identity [| "r" |]));
  check_bool "skeleton unchanged" true (Splan.equal r.Rewrite.skeleton (Splan.Scan "r"))

let test_analyze_selection_transparent () =
  (* Prop 5: selection above or below the sample yields the same GUS. *)
  let above =
    Rewrite.analyze ~card
      (Splan.Select (Expr.(col "x" > int 3), Splan.Sample (b01, Splan.Scan "r")))
  in
  let below =
    Rewrite.analyze ~card
      (Splan.Sample (b01, Splan.Select (Expr.(col "x" > int 3), Splan.Scan "r")))
  in
  check_bool "same GUS either side" true
    (Gus.equal_approx (Lazy.force above.Rewrite.gus) (Lazy.force below.Rewrite.gus))

let test_analyze_join () =
  let plan =
    join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Sample (b05, Splan.Scan "s"))
  in
  let res = Rewrite.analyze ~card plan in
  let expected = Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"s" 0.5) in
  check_bool "Prop 6" true (Gus.equal_approx (Lazy.force res.Rewrite.gus) expected);
  check_bool "skeleton sample-free" true
    (Splan.equal res.Rewrite.skeleton (join (Splan.Scan "r") (Splan.Scan "s")))

let test_analyze_unsampled_side_identity () =
  (* Prop 4: the unsampled side contributes an identity GUS. *)
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s") in
  let res = Rewrite.analyze ~card plan in
  let expected = Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.identity [| "s" |]) in
  check_bool "identity on s" true (Gus.equal_approx (Lazy.force res.Rewrite.gus) expected)

let test_analyze_stacked_samples () =
  (* Prop 8: B(0.5) over B(0.1) over r = B(0.05). *)
  let plan = Splan.Sample (b05, Splan.Sample (b01, Splan.Scan "r")) in
  let res = Rewrite.analyze ~card plan in
  check_bool "stacked" true
    (Gus.equal_approx (Lazy.force res.Rewrite.gus) (Gus.bernoulli ~rel:"r" 0.05))

let test_analyze_sample_over_join () =
  (* Bernoulli over the join output: b has p^2 off-diagonal, compacted with
     the identity below. *)
  let plan = Splan.Sample (b05, join (Splan.Scan "r") (Splan.Scan "s")) in
  let res = Rewrite.analyze ~card plan in
  check_bool "bernoulli_over" true
    (Gus.equal_approx (Lazy.force res.Rewrite.gus) (Gus.bernoulli_over [| "r"; "s" |] 0.5))

let test_analyze_query1_matches_paper () =
  let plan =
    join
      (Splan.Sample (b01, Splan.Scan "lineitem"))
      (Splan.Sample (Sampler.Wor 1000, Splan.Scan "orders"))
  in
  let res = Rewrite.analyze ~card plan in
  close ~eps:1e-7 "a from Example 3" 6.667e-4 (Lazy.force res.Rewrite.gus).Gus.a;
  check_int "derivation steps recorded" 5 (List.length res.Rewrite.steps)

let test_analyze_theta_and_cross () =
  let theta =
    Splan.Theta_join
      (Expr.bool true, Splan.Sample (b01, Splan.Scan "r"), Splan.Scan "s")
  in
  let cross = Splan.Cross (Splan.Sample (b01, Splan.Scan "r"), Splan.Scan "s") in
  let gt = (Lazy.force (Rewrite.analyze ~card theta).Rewrite.gus) in
  let gc = (Lazy.force (Rewrite.analyze ~card cross).Rewrite.gus) in
  check_bool "theta = cross GUS" true (Gus.equal_approx gt gc)

let test_analyze_union_samples () =
  let plan =
    Splan.Union_samples
      (Splan.Sample (b01, Splan.Scan "r"), Splan.Sample (b05, Splan.Scan "r"))
  in
  let res = Rewrite.analyze ~card plan in
  let expected = Gus.union (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"r" 0.5) in
  check_bool "Prop 7" true (Gus.equal_approx (Lazy.force res.Rewrite.gus) expected);
  check_bool "skeleton collapses" true (Splan.equal res.Rewrite.skeleton (Splan.Scan "r"))

let test_analyze_union_mismatch () =
  let plan =
    Splan.Union_samples
      (Splan.Sample (b01, Splan.Scan "r"), Splan.Sample (b01, Splan.Scan "s"))
  in
  check_bool "different skeletons rejected" true
    (unsupported (fun () -> Rewrite.analyze ~card plan))

let test_analyze_self_join_rejected () =
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "r") in
  check_bool "self-join" true (unsupported (fun () -> Rewrite.analyze ~card plan))

let test_analyze_wr_rejected () =
  let plan = Splan.Sample (Sampler.Wr 10, Splan.Scan "r") in
  check_bool "WR rejected" true (unsupported (fun () -> Rewrite.analyze ~card plan))

let test_analyze_wor_over_selection_rejected () =
  (* WOR needs its input cardinality: a selection below makes it random. *)
  let plan =
    Splan.Sample
      (Sampler.Wor 10, Splan.Select (Expr.(col "x" > int 0), Splan.Scan "r"))
  in
  check_bool "rejected" true (unsupported (fun () -> Rewrite.analyze ~card plan))

let test_analyze_db_variant () =
  let db = Database.create () in
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let r = Relation.create_base ~name:"r" schema in
  for i = 0 to 9 do
    Relation.append_row r [| Value.Int i |]
  done;
  Database.add db r;
  let res = Rewrite.analyze_db db (Splan.Sample (Sampler.Wor 5, Splan.Scan "r")) in
  close "a = 5/10" 0.5 (Lazy.force res.Rewrite.gus).Gus.a

let test_distinct_sample_free_ok () =
  let plan = Splan.Distinct (Splan.Select (Expr.(col "x" > int 1), Splan.Scan "r")) in
  let res = Rewrite.analyze ~card plan in
  check_bool "identity GUS" true
    (Gus.equal_approx (Lazy.force res.Rewrite.gus) (Gus.identity [| "r" |]))

let test_distinct_above_sampling_rejected () =
  let plan = Splan.Distinct (Splan.Sample (b01, Splan.Scan "r")) in
  check_bool "rejected per Section 9" true
    (unsupported (fun () -> Rewrite.analyze ~card plan))

let test_distinct_noncommutation_counterexample () =
  (* The paper: "counter examples can be readily built".  Build one: a
     column with many duplicates; DISTINCT before vs after sampling give
     different expected counts, and no single scale factor fixes it. *)
  let db = Database.create () in
  let schema = Schema.make [ { Schema.name = "x"; ty = Value.TInt } ] in
  let r = Relation.create_base ~name:"r" schema in
  for i = 0 to 199 do
    Relation.append_row r [| Value.Int (i mod 4) |]
  done;
  Database.add db r;
  (* distinct(sample(r)) has ~4 rows for any non-trivial rate; the exact
     distinct count is 4; the Bernoulli scale-up 4/p wildly overshoots,
     and E[|distinct(sample)|] != p * 4 either. *)
  let plan = Splan.Distinct (Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "r")) in
  let counts = ref 0.0 in
  let trials = 300 in
  for t = 1 to trials do
    let s = Splan.exec db (Gus_util.Rng.create (42 + t)) plan in
    counts := !counts +. float_of_int (Relation.cardinality s)
  done;
  let mean = !counts /. float_of_int trials in
  (* ~4 distinct values survive essentially always. *)
  check_bool "E[|distinct(sample)|] ~ 4, not p*4 = 2" true (mean > 3.5);
  check_bool "naive scale-up 1/p would give ~8, not 4" true (mean /. 0.5 > 7.0)

(* ---- executing plans with samples ---- *)

let test_exec_deterministic_in_seed () =
  let db = Gus_tpch.Tpch.generate ~seed:2 ~scale:0.05 () in
  let plan = Splan.Sample (b01, Splan.Scan "lineitem") in
  let s1 = Splan.exec db (Gus_util.Rng.create 7) plan in
  let s2 = Splan.exec db (Gus_util.Rng.create 7) plan in
  check_int "same seed same sample" (Relation.cardinality s1) (Relation.cardinality s2)

let test_exec_exact_ignores_samples () =
  let db = Gus_tpch.Tpch.generate ~seed:2 ~scale:0.05 () in
  let li = Relation.cardinality (Database.find db "lineitem") in
  let plan = Splan.Sample (b01, Splan.Scan "lineitem") in
  check_int "all rows" li (Relation.cardinality (Splan.exec_exact db plan))

let test_pp_smoke () =
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s") in
  let one_line = Format.asprintf "%a" Splan.pp plan in
  let tree = Format.asprintf "%a" Splan.pp_tree plan in
  check_bool "pp nonempty" true (String.length one_line > 10);
  check_bool "tree multiline" true (String.contains tree '\n')

let () =
  Alcotest.run "gus_core.rewrite"
    [ ( "splan",
        [ Alcotest.test_case "lineage schema" `Quick test_lineage_schema;
          Alcotest.test_case "strip_samples" `Quick test_strip_samples;
          Alcotest.test_case "equality" `Quick test_plan_equal;
          Alcotest.test_case "self-join overlap" `Quick test_self_join_lineage_overlap;
          Alcotest.test_case "pp" `Quick test_pp_smoke ] );
      ( "translate",
        [ Alcotest.test_case "bernoulli base" `Quick test_translate_bernoulli_base;
          Alcotest.test_case "wor base" `Quick test_translate_wor_base;
          Alcotest.test_case "block base" `Quick test_translate_block;
          Alcotest.test_case "hash base" `Quick test_translate_hash;
          Alcotest.test_case "bernoulli derived" `Quick test_translate_bernoulli_derived;
          Alcotest.test_case "unsupported cases" `Quick test_translate_unsupported ] );
      ( "analyze",
        [ Alcotest.test_case "scan = identity (Prop 4)" `Quick test_analyze_scan_is_identity;
          Alcotest.test_case "selection transparent (Prop 5)" `Quick test_analyze_selection_transparent;
          Alcotest.test_case "join (Prop 6)" `Quick test_analyze_join;
          Alcotest.test_case "identity on unsampled side" `Quick test_analyze_unsampled_side_identity;
          Alcotest.test_case "stacked samples (Prop 8)" `Quick test_analyze_stacked_samples;
          Alcotest.test_case "sample over join" `Quick test_analyze_sample_over_join;
          Alcotest.test_case "Query 1 coefficients" `Quick test_analyze_query1_matches_paper;
          Alcotest.test_case "theta join / cross" `Quick test_analyze_theta_and_cross;
          Alcotest.test_case "union of samples (Prop 7)" `Quick test_analyze_union_samples;
          Alcotest.test_case "union mismatch" `Quick test_analyze_union_mismatch;
          Alcotest.test_case "self-join rejected" `Quick test_analyze_self_join_rejected;
          Alcotest.test_case "WR rejected" `Quick test_analyze_wr_rejected;
          Alcotest.test_case "WOR over selection rejected" `Quick test_analyze_wor_over_selection_rejected;
          Alcotest.test_case "DISTINCT sample-free ok" `Quick test_distinct_sample_free_ok;
          Alcotest.test_case "DISTINCT above sampling rejected" `Quick test_distinct_above_sampling_rejected;
          Alcotest.test_case "DISTINCT non-commutation counterexample" `Quick test_distinct_noncommutation_counterexample;
          Alcotest.test_case "analyze_db cardinalities" `Quick test_analyze_db_variant ] );
      ( "exec",
        [ Alcotest.test_case "deterministic in seed" `Quick test_exec_deterministic_in_seed;
          Alcotest.test_case "exact ignores samples" `Quick test_exec_exact_ignores_samples ] ) ]
