lib/relational/expr.ml: Format Hashtbl List Printf Schema Stdlib Tuple Value
