lib/sql/planner.mli: Ast Gus_core Gus_relational Gus_sampling
