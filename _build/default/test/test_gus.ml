(* Tests for the GUS algebra itself: constructors vs Figure 1, the
   combination rules vs the paper's worked examples, the semiring laws of
   Theorem 2, and the Theorem-1 coefficient machinery. *)

module Gus = Gus_core.Gus
module Subset = Gus_util.Subset

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

let b g names_mask = Gus.b_get g names_mask

(* ---- constructors (Figure 1) ---- *)

let test_bernoulli_params () =
  let g = Gus.bernoulli ~rel:"r" 0.1 in
  close "a = p" 0.1 g.Gus.a;
  close "b{} = p^2" 0.01 (b g 0);
  close "b{r} = p" 0.1 (b g 1)

let test_wor_params () =
  let g = Gus.wor ~rel:"r" ~n:1000 ~out_of:150000 in
  close ~eps:1e-12 "a = n/N" (1000.0 /. 150000.0) g.Gus.a;
  close ~eps:1e-12 "b{} = n(n-1)/N(N-1)"
    (1000.0 *. 999.0 /. (150000.0 *. 149999.0))
    (b g 0);
  close ~eps:1e-12 "b{r} = n/N" (1000.0 /. 150000.0) (b g 1)

let test_wor_edges () =
  let g = Gus.wor ~rel:"r" ~n:1 ~out_of:1 in
  close "n=N=1 a" 1.0 g.Gus.a;
  close "n=N=1 b_empty" 0.0 (b g 0);
  let g0 = Gus.wor ~rel:"r" ~n:0 ~out_of:10 in
  close "n=0" 0.0 g0.Gus.a;
  check_bool "n > N rejected" true
    (try ignore (Gus.wor ~rel:"r" ~n:5 ~out_of:3); false
     with Invalid_argument _ -> true);
  check_bool "N = 0 rejected" true
    (try ignore (Gus.wor ~rel:"r" ~n:0 ~out_of:0); false
     with Invalid_argument _ -> true)

let test_identity_null () =
  let id = Gus.identity [| "r"; "s" |] in
  close "identity a" 1.0 id.Gus.a;
  Array.iter (fun v -> close "identity b" 1.0 v) id.Gus.b;
  let z = Gus.null [| "r" |] in
  close "null a" 0.0 z.Gus.a;
  Array.iter (fun v -> close "null b" 0.0 v) z.Gus.b

let test_bernoulli_over () =
  let g = Gus.bernoulli_over [| "r"; "s" |] 0.3 in
  close "a" 0.3 g.Gus.a;
  close "b{}" 0.09 (b g 0);
  close "b{r}" 0.09 (b g 1);
  close "b{s}" 0.09 (b g 2);
  close "b{r,s} = p (diagonal)" 0.3 (b g 3)

let test_make_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "wrong b length" true
    (raises (fun () -> Gus.make ~rels:[| "r" |] ~a:0.5 ~b:[| 0.25 |]));
  check_bool "a out of range" true
    (raises (fun () -> Gus.make ~rels:[| "r" |] ~a:1.5 ~b:[| 0.2; 1.5 |]));
  check_bool "diagonal violation" true
    (raises (fun () -> Gus.make ~rels:[| "r" |] ~a:0.5 ~b:[| 0.25; 0.7 |]));
  check_bool "duplicate relations" true
    (raises (fun () -> Gus.identity [| "r"; "r" |]))

(* ---- Example 2/3: Query 1 ---- *)

let query1_gus () =
  Gus.join (Gus.bernoulli ~rel:"lineitem" 0.1)
    (Gus.wor ~rel:"orders" ~n:1000 ~out_of:150000)

let test_example3_join () =
  let g = query1_gus () in
  (* order: lineitem = bit 0, orders = bit 1 *)
  close ~eps:1e-7 "a" 6.667e-4 g.Gus.a;
  close ~eps:1e-9 "b{}" 4.44e-7 (b g 0);
  close ~eps:1e-8 "b{l}" 4.44e-6 (b g 1);
  close ~eps:1e-7 "b{o}" 6.667e-5 (b g 2);
  close ~eps:1e-7 "b{l,o}" 6.667e-4 (b g 3)

let test_join_self_join_rejected () =
  let g1 = Gus.bernoulli ~rel:"r" 0.5 in
  check_bool "self join" true
    (try ignore (Gus.join g1 g1); false with Gus.Incompatible _ -> true)

(* ---- Example 5 / Figure 5 ---- *)

let test_example5_composition () =
  let g =
    Gus.join (Gus.bernoulli ~rel:"l" 0.2) (Gus.bernoulli ~rel:"o" 0.3)
  in
  close "a3" 0.06 g.Gus.a;
  close "b{}" 0.0036 (b g 0);
  close "b{l}" 0.018 (b g 1);
  close "b{o}" 0.012 (b g 2);
  close "b{l,o}" 0.06 (b g 3)

let test_figure5_compaction () =
  let g12 = query1_gus () in
  let g3 =
    Gus.join (Gus.bernoulli ~rel:"lineitem" 0.2) (Gus.bernoulli ~rel:"orders" 0.3)
  in
  let g = Gus.compact g3 g12 in
  close ~eps:1e-8 "a123 = 4e-5" 4e-5 g.Gus.a;
  close ~eps:1e-11 "b{} = 1.598e-9" 1.598e-9 (b g 0);
  close ~eps:1e-10 "b{l} = 7.992e-8" 7.992e-8 (b g 1);
  close ~eps:1e-9 "b{o} = 8e-7" 8e-7 (b g 2);
  close ~eps:1e-8 "b{l,o} = 4e-5" 4e-5 (b g 3)

(* ---- union (Prop 7) ---- *)

let test_union_two_bernoullis () =
  (* Union of two independent Bernoulli samples of R is Bernoulli with
     rate 1-(1-p1)(1-p2). *)
  let p1 = 0.3 and p2 = 0.5 in
  let u = Gus.union (Gus.bernoulli ~rel:"r" p1) (Gus.bernoulli ~rel:"r" p2) in
  let p = 1.0 -. ((1.0 -. p1) *. (1.0 -. p2)) in
  let expected = Gus.bernoulli ~rel:"r" p in
  check_bool "equals direct Bernoulli" true (Gus.equal_approx ~eps:1e-12 u expected)

let test_union_with_null_is_identity_element () =
  let g = Gus.bernoulli ~rel:"r" 0.4 in
  let u = Gus.union g (Gus.null [| "r" |]) in
  check_bool "G + 0 = G" true (Gus.equal_approx u g)

let test_union_schema_mismatch () =
  check_bool "mismatch" true
    (try
       ignore (Gus.union (Gus.bernoulli ~rel:"r" 0.5) (Gus.bernoulli ~rel:"s" 0.5));
       false
     with Gus.Incompatible _ -> true)

(* ---- compaction (Prop 8) ---- *)

let test_compact_bernoullis () =
  let c = Gus.compact (Gus.bernoulli ~rel:"r" 0.4) (Gus.bernoulli ~rel:"r" 0.5) in
  check_bool "B(p1) stacked on B(p2) = B(p1 p2)" true
    (Gus.equal_approx c (Gus.bernoulli ~rel:"r" 0.2))

let test_compact_identity_null () =
  let g = Gus.wor ~rel:"r" ~n:10 ~out_of:100 in
  check_bool "G * 1 = G" true (Gus.equal_approx (Gus.compact g (Gus.identity [| "r" |])) g);
  let z = Gus.compact g (Gus.null [| "r" |]) in
  check_bool "G * 0 = 0" true (Gus.equal_approx z (Gus.null [| "r" |]))

(* ---- extend / permute ---- *)

let test_extend () =
  let g = Gus.bernoulli ~rel:"r" 0.5 in
  let e = Gus.extend g [| "s"; "t" |] in
  check Alcotest.int "3 rels" 3 (Gus.n_rels e);
  close "a unchanged" 0.5 e.Gus.a;
  (* b for any T: depends only on whether r ∈ T *)
  close "b{} = p^2" 0.25 (b e 0);
  close "b{s,t} = p^2" 0.25 (b e 6);
  close "b{r,s,t} = p" 0.5 (b e 7);
  check_bool "extend by nothing" true (Gus.equal_approx (Gus.extend g [||]) g)

let test_permute () =
  let g = Gus.join (Gus.bernoulli ~rel:"r" 0.2) (Gus.bernoulli ~rel:"s" 0.5) in
  let p = Gus.permute g [| "s"; "r" |] in
  close "a preserved" g.Gus.a p.Gus.a;
  (* b{r} in g (mask 1) must equal b{r} in p (mask 2) *)
  close "b{r}" (b g 1) (b p 2);
  close "b{s}" (b g 2) (b p 1);
  check_bool "double permute = original" true
    (Gus.equal_approx (Gus.permute p [| "r"; "s" |]) g);
  check_bool "bad permutation" true
    (try ignore (Gus.permute g [| "r"; "x" |]); false
     with Gus.Incompatible _ -> true)

(* ---- Theorem 1 machinery ---- *)

let test_c_fast_equals_naive () =
  List.iter
    (fun g ->
      let fast = Gus.c_coefficients g and naive = Gus.c_naive g in
      Array.iteri (fun i c -> close ~eps:1e-12 "c match" naive.(i) c) fast)
    [ Gus.bernoulli ~rel:"r" 0.3;
      query1_gus ();
      Gus.join (query1_gus ()) (Gus.bernoulli ~rel:"part" 0.5);
      Gus.identity [| "a"; "b"; "c" |] ]

let test_c_bernoulli_closed_form () =
  let p = 0.3 in
  let g = Gus.bernoulli ~rel:"r" p in
  let c = Gus.c_coefficients g in
  close "c_empty = p^2" (p *. p) c.(0);
  close "c_r = p - p^2" (p -. (p *. p)) c.(1)

let test_c_identity () =
  (* Identity GUS: c_∅ = 1, all others 0 -> zero variance. *)
  let g = Gus.identity [| "a"; "b" |] in
  let c = Gus.c_coefficients g in
  close "c_empty" 1.0 c.(0);
  close "c_a" 0.0 c.(1);
  close "c_b" 0.0 c.(2);
  close "c_ab" 0.0 c.(3)

let test_mobius_inverse () =
  (* sum_{T ⊆ S} c_T = b'_S: the transform inverts correctly. *)
  let g = query1_gus () in
  let c = Gus.c_coefficients g in
  Subset.iter_all (Gus.n_rels g) (fun s ->
      let acc = ref 0.0 in
      Subset.iter_subsets s (fun t -> acc := !acc +. c.(t));
      close ~eps:1e-12 "inverse transform" (b g s) !acc)

let test_variance_bernoulli_closed_form () =
  (* Var[(1/p) sum f] for Bernoulli(p) = (1-p)/p * sum f^2. *)
  let p = 0.25 in
  let g = Gus.bernoulli ~rel:"r" p in
  let fs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  let sum = Array.fold_left ( +. ) 0.0 fs in
  let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 fs in
  let y = [| sum *. sum; sumsq |] in
  close ~eps:1e-9 "bernoulli variance" ((1.0 -. p) /. p *. sumsq)
    (Gus.variance g ~y)

let test_variance_wor_closed_form () =
  (* Classic finite-population: Var = N^2 (1-f) S^2 / n. *)
  let n = 4 and nn = 10 in
  let g = Gus.wor ~rel:"r" ~n ~out_of:nn in
  let fs = Array.init nn (fun i -> float_of_int (i * i)) in
  let total = Array.fold_left ( +. ) 0.0 fs in
  let sumsq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 fs in
  let y = [| total *. total; sumsq |] in
  let mean = total /. float_of_int nn in
  let s2 =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 fs
    /. float_of_int (nn - 1)
  in
  let fr = float_of_int n /. float_of_int nn in
  let classic = float_of_int (nn * nn) *. (1.0 -. fr) *. s2 /. float_of_int n in
  close ~eps:1e-6 "wor variance" classic (Gus.variance g ~y)

let test_variance_identity_zero () =
  let g = Gus.identity [| "r" |] in
  close "no sampling, no variance" 0.0 (Gus.variance g ~y:[| 100.0; 42.0 |])

let test_variance_errors () =
  let g = Gus.bernoulli ~rel:"r" 0.5 in
  check_bool "wrong y length" true
    (try ignore (Gus.variance g ~y:[| 1.0 |]); false
     with Invalid_argument _ -> true);
  let z = Gus.null [| "r" |] in
  check_bool "a = 0" true
    (try ignore (Gus.variance z ~y:[| 1.0; 1.0 |]); false
     with Gus.Incompatible _ -> true)

let test_scale_up () =
  let g = Gus.bernoulli ~rel:"r" 0.1 in
  close "scale" 100.0 (Gus.scale_up g 10.0)

let test_d_correction_identities () =
  let g = query1_gus () in
  let n = Gus.n_rels g in
  Subset.iter_all n (fun s ->
      let d = Gus.d_correction g ~s in
      close ~eps:1e-12 "d_{S,S} = b_S" (b g s) d.(Subset.empty));
  (* full set: d over empty complement is just a *)
  let d_full = Gus.d_correction g ~s:(Subset.full n) in
  close "d_full" g.Gus.a d_full.(Subset.empty)

(* ---- qcheck: algebraic laws over randomly built GUS values ---- *)

let gus_gen rels =
  (* A random GUS over [rels] built from guaranteed-consistent pieces. *)
  let open QCheck2.Gen in
  let base rel =
    oneof
      [ (float_range 0.01 1.0 >|= fun p -> Gus.bernoulli ~rel p);
        ( pair (int_range 1 50) (int_range 0 50) >|= fun (nn, extra) ->
          Gus.wor ~rel ~n:(min nn (nn + extra)) ~out_of:(nn + extra) ) ]
  in
  let single rel =
    oneof
      [ base rel;
        (pair (base rel) (base rel) >|= fun (a, b) -> Gus.compact a b);
        (pair (base rel) (base rel) >|= fun (a, b) -> Gus.union a b) ]
  in
  let rec build = function
    | [] -> invalid_arg "gus_gen: empty"
    | [ r ] -> single r
    | r :: rest -> map2 Gus.join (single r) (build rest)
  in
  build rels

let prop_union_commutative =
  QCheck2.Test.make ~name:"union commutative" ~count:200
    QCheck2.Gen.(pair (gus_gen [ "r"; "s" ]) (gus_gen [ "r"; "s" ]))
    (fun (g1, g2) -> Gus.equal_approx ~eps:1e-9 (Gus.union g1 g2) (Gus.union g2 g1))

let prop_union_associative =
  QCheck2.Test.make ~name:"union associative" ~count:200
    QCheck2.Gen.(triple (gus_gen [ "r" ]) (gus_gen [ "r" ]) (gus_gen [ "r" ]))
    (fun (g1, g2, g3) ->
      Gus.equal_approx ~eps:1e-9
        (Gus.union (Gus.union g1 g2) g3)
        (Gus.union g1 (Gus.union g2 g3)))

let prop_compact_commutative =
  QCheck2.Test.make ~name:"compaction commutative" ~count:200
    QCheck2.Gen.(pair (gus_gen [ "r"; "s" ]) (gus_gen [ "r"; "s" ]))
    (fun (g1, g2) ->
      Gus.equal_approx ~eps:1e-9 (Gus.compact g1 g2) (Gus.compact g2 g1))

let prop_compact_associative =
  QCheck2.Test.make ~name:"compaction associative" ~count:200
    QCheck2.Gen.(triple (gus_gen [ "r" ]) (gus_gen [ "r" ]) (gus_gen [ "r" ]))
    (fun (g1, g2, g3) ->
      Gus.equal_approx ~eps:1e-9
        (Gus.compact (Gus.compact g1 g2) g3)
        (Gus.compact g1 (Gus.compact g2 g3)))

let prop_semiring_identities =
  QCheck2.Test.make ~name:"semiring identities (Thm 2)" ~count:200
    (gus_gen [ "r"; "s" ])
    (fun g ->
      let rels = g.Gus.rels in
      Gus.equal_approx ~eps:1e-9 (Gus.union g (Gus.null rels)) g
      && Gus.equal_approx ~eps:1e-9 (Gus.compact g (Gus.identity rels)) g
      && Gus.equal_approx ~eps:1e-9
           (Gus.compact g (Gus.null rels))
           (Gus.null rels))

let prop_join_symmetric_up_to_permutation =
  QCheck2.Test.make ~name:"join symmetric up to permutation" ~count:200
    QCheck2.Gen.(pair (gus_gen [ "r" ]) (gus_gen [ "s" ]))
    (fun (g1, g2) ->
      let ab = Gus.join g1 g2 in
      let ba = Gus.permute (Gus.join g2 g1) [| "r"; "s" |] in
      Gus.equal_approx ~eps:1e-9 ab ba)

let prop_c_transform_roundtrip =
  QCheck2.Test.make ~name:"c fast = c naive on random GUS" ~count:100
    (gus_gen [ "r"; "s"; "t" ])
    (fun g ->
      let fast = Gus.c_coefficients g and naive = Gus.c_naive g in
      Array.for_all2 (fun a bv -> Float.abs (a -. bv) < 1e-9) fast naive)

let prop_probability_consistency =
  (* Any GUS built from real samplers satisfies b_T <= min over supersets:
     agreeing on more lineage can only help (for our independent pieces,
     b is monotone in T). *)
  QCheck2.Test.make ~name:"b monotone in T for sampler-built GUS" ~count:200
    (gus_gen [ "r"; "s" ])
    (fun g ->
      let ok = ref true in
      let n = Gus.n_rels g in
      Subset.iter_all n (fun s ->
          Subset.iter_all n (fun t ->
              if Subset.subset s t && Gus.b_get g s > Gus.b_get g t +. 1e-12 then
                ok := false));
      !ok)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_commutative; prop_union_associative; prop_compact_commutative;
      prop_compact_associative; prop_semiring_identities;
      prop_join_symmetric_up_to_permutation; prop_c_transform_roundtrip;
      prop_probability_consistency ]

let () =
  Alcotest.run "gus_core.gus"
    [ ( "constructors",
        [ Alcotest.test_case "bernoulli (Fig 1)" `Quick test_bernoulli_params;
          Alcotest.test_case "wor (Fig 1)" `Quick test_wor_params;
          Alcotest.test_case "wor edge cases" `Quick test_wor_edges;
          Alcotest.test_case "identity / null" `Quick test_identity_null;
          Alcotest.test_case "bernoulli over derived" `Quick test_bernoulli_over;
          Alcotest.test_case "validation" `Quick test_make_validation ] );
      ( "paper-examples",
        [ Alcotest.test_case "Example 3 join" `Quick test_example3_join;
          Alcotest.test_case "self-join rejected" `Quick test_join_self_join_rejected;
          Alcotest.test_case "Example 5 composition" `Quick test_example5_composition;
          Alcotest.test_case "Figure 5 compaction" `Quick test_figure5_compaction ] );
      ( "union-compact",
        [ Alcotest.test_case "union of Bernoullis" `Quick test_union_two_bernoullis;
          Alcotest.test_case "union null element" `Quick test_union_with_null_is_identity_element;
          Alcotest.test_case "union schema mismatch" `Quick test_union_schema_mismatch;
          Alcotest.test_case "compact Bernoullis" `Quick test_compact_bernoullis;
          Alcotest.test_case "compact identity/null" `Quick test_compact_identity_null ] );
      ( "reshaping",
        [ Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "permute" `Quick test_permute ] );
      ( "theorem1",
        [ Alcotest.test_case "c fast = naive" `Quick test_c_fast_equals_naive;
          Alcotest.test_case "c Bernoulli closed form" `Quick test_c_bernoulli_closed_form;
          Alcotest.test_case "c identity" `Quick test_c_identity;
          Alcotest.test_case "Mobius inverse" `Quick test_mobius_inverse;
          Alcotest.test_case "variance: Bernoulli closed form" `Quick test_variance_bernoulli_closed_form;
          Alcotest.test_case "variance: WOR finite population" `Quick test_variance_wor_closed_form;
          Alcotest.test_case "variance: identity = 0" `Quick test_variance_identity_zero;
          Alcotest.test_case "variance errors" `Quick test_variance_errors;
          Alcotest.test_case "scale_up" `Quick test_scale_up;
          Alcotest.test_case "d-correction identities" `Quick test_d_correction_identities ] );
      ("laws", qcheck_tests) ]
