(** The y_S / Y_S data moments of Theorem 1 (Section 6.3).

    For a subset [S] of the lineage schema,
    [y_S = Σ_{lineage-groups on S} (Σ_{tuples in group} f)²] — a group-by
    on the lineage ids of the relations in [S].  Computed over the full
    query result these are the exact [y_S]; computed over a sample they are
    the raw [Y_S] that the SBox corrects into unbiased [Ŷ_S]. *)

val of_pairs : n_rels:int -> (int array * float) array -> float array
(** [(lineage, f)] pairs → the [2^n_rels] moments, indexed by subset mask.
    Every lineage must have length [n_rels]. *)

val of_relation : f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> float array
(** Evaluate [f] on every tuple (Null ↦ 0) and delegate to {!of_pairs}
    using the relation's lineage schema. *)

val pairs_of_relation :
  f:Gus_relational.Expr.t -> Gus_relational.Relation.t -> (int array * float) array
(** The SBox input stream of Section 6.2: per-result-tuple lineage and
    aggregate contribution. *)

val total : (int array * float) array -> float
(** Σ f — the quantity the estimate scales up. *)

val bilinear_of_pairs : n_rels:int -> (int array * float * float) array -> float array
(** Cross moments [y^{fg}_S = Σ_{groups on S} (Σ f)(Σ g)] — the bilinear
    generalization used for covariance between two SUM aggregates over the
    same sample (and hence for AVG via the delta method).
    [bilinear_of_pairs] with [f = g] coincides with {!of_pairs}. *)

val bilinear_of_relation :
  f:Gus_relational.Expr.t ->
  g:Gus_relational.Expr.t ->
  Gus_relational.Relation.t ->
  float array
