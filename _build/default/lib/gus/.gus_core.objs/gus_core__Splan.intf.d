lib/gus/splan.mli: Database Expr Format Gus_relational Gus_sampling Gus_util Lineage Relation
