(** Named, versioned datasets for the serving engine.

    A catalog entry binds a name to an in-memory {!Gus_relational.Database.t}
    snapshot plus a monotonically increasing version.  Registering under an
    existing name replaces the snapshot and bumps the version; nothing ever
    mutates a registered database in place, so a {!entry} handed out earlier
    stays valid (it just becomes stale).  Estimates are deterministic in
    [(dataset version, sql, params, seed)] — the version is therefore part
    of the engine's cache key, and every mutation fires the {!on_mutate}
    hooks so caches can drop the name's entries eagerly. *)

type source =
  | Tpch of { scale : float; seed : int }
      (** synthetic TPC-H-style generator, default skew *)
  | Skewed of { scale : float; seed : int; part_skew : float; price_skew : float }
      (** the generator with heavy-tail knobs — the "synthetic" source *)
  | Csv_dir of string  (** CSVs written by [gusdb gen] *)
  | Snapshot of string
      (** binary snapshot written by [gusdb snapshot]; mmapped on load *)
  | In_memory of string  (** caller-built database; payload describes it *)

val source_to_string : source -> string
(** One-line rendering for [stats] listings, e.g. ["tpch(scale=0.1,seed=1)"]. *)

val source_json : source -> string
(** JSON rendering with the serving protocol's [register] field names
    (["{\"source\":\"tpch\",\"scale\":0.1,\"seed\":1}"]), so journaled
    register events can be fed back through the protocol's source parser
    on replay.  [In_memory] renders as [{"source":"memory",...}], which
    has no build recipe — replay only accepts it when the dataset is
    already registered. *)

type entry = {
  dataset : string;
  version : int;  (** 1 on first registration, +1 per replacement *)
  source : source;
  db : Gus_relational.Database.t;
}

type t

val create : unit -> t

val register : t -> name:string -> source:source -> Gus_relational.Database.t -> entry
(** Bind (or rebind) [name]; returns the new entry.  Fires {!on_mutate}
    hooks after the binding is in place. *)

val build : source -> Gus_relational.Database.t
(** Build a database from its source description: [Tpch]/[Skewed]
    generate, [Csv_dir] loads every known TPC-H CSV present in the
    directory, [Snapshot] maps a binary snapshot file
    ({!Gus_relational.Snapshot.load}).  Raises [Failure] on an
    unreadable or empty CSV directory,
    {!Gus_relational.Snapshot.Format_error} /
    {!Gus_relational.Snapshot.Version_mismatch} on a bad snapshot, and
    [Invalid_argument] on [In_memory] (which has no recipe — use
    {!register}).  Also what the CLI's [--data] loading goes through. *)

val load : t -> name:string -> source:source -> entry
(** [register] of {!build}[ source] under [name]. *)

exception Unknown_dataset of string

val find : t -> string -> entry option
val find_exn : t -> string -> entry
(** Raises {!Unknown_dataset}. *)

val remove : t -> string -> bool
(** [true] if the name was bound.  Fires {!on_mutate} hooks. *)

val names : t -> entry list
(** Current entries, sorted by dataset name. *)

val on_mutate : t -> (string -> unit) -> unit
(** Register a hook called with the dataset name after every
    {!register}/{!load}/{!remove}, in registration order. *)
