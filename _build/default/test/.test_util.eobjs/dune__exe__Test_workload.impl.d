test/test_workload.ml: Alcotest Float Gus_experiments Gus_sql Gus_stats Gus_tpch Lazy List Printf String
