lib/experiments/exp_online.ml: Float Gus_estimator Gus_online Gus_stats Gus_util Harness List Printf
