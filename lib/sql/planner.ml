open Gus_relational
module Splan = Gus_core.Splan
module Sampler = Gus_sampling.Sampler

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type compiled = {
  plan : Splan.t;
  query : Ast.query;
}

let system_block_rows = 100

let sampler_of_spec = function
  | Ast.Percent p ->
      if p >= 100.0 then None else Some (Sampler.Bernoulli (p /. 100.0))
  | Ast.Rows n -> Some (Sampler.Wor n)
  | Ast.System_percent p ->
      if p >= 100.0 then None
      else Some (Sampler.Block { rows_per_block = system_block_rows; p = p /. 100.0 })

(* Split a WHERE tree into its top-level conjuncts. *)
let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec conjoin = function
  | [] -> None
  | [ e ] -> Some e
  | e :: rest -> (
      match conjoin rest with None -> Some e | Some r -> Some (Expr.And (e, r)))

let compile ?(self_join_check = true) db query =
  (match query.Ast.from with [] -> error "empty FROM clause" | _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun fi ->
      let r = fi.Ast.relation in
      if self_join_check && Hashtbl.mem seen r then
        error "relation %s appears twice in FROM (self-joins are not supported \
               by the GUS theory)" r;
      Hashtbl.add seen r ();
      if not (Database.mem db r) then error "unknown relation %s" r)
    query.Ast.from;
  (* Which FROM relation owns a column name. *)
  let owner col =
    let owners =
      List.filter
        (fun fi -> Schema.mem (Database.find db fi.Ast.relation).Relation.schema col)
        query.Ast.from
    in
    match owners with
    | [ fi ] -> fi.Ast.relation
    | [] -> error "unknown column %s" col
    | _ -> error "ambiguous column %s" col
  in
  let relations_of_expr e =
    List.sort_uniq String.compare (List.map owner (Expr.columns e))
  in
  let preds = match query.Ast.where with None -> [] | Some w -> conjuncts w in
  (* Partition predicates. *)
  let single, multi =
    List.partition (fun p -> List.length (relations_of_expr p) <= 1) preds
  in
  let single_for rel =
    List.filter (fun p -> relations_of_expr p = [ rel ]) single
  in
  let constant_preds = List.filter (fun p -> relations_of_expr p = []) single in
  (* Key-equality join predicates: col = col across two relations. *)
  let is_join_key = function
    | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
        let ra = owner a and rb = owner b in
        if ra <> rb then Some ((ra, a), (rb, b)) else None
    | _ -> None
  in
  let join_keys = List.filter_map is_join_key multi in
  let other_multi = List.filter (fun p -> is_join_key p = None) multi in
  (* Leaf plan for one FROM item: scan, sample, single-table filters. *)
  let leaf fi =
    let base = Splan.Scan fi.Ast.relation in
    let sampled =
      match Option.map sampler_of_spec fi.Ast.sample with
      | Some (Some s) -> Splan.Sample (s, base)
      | Some None | None -> base
    in
    match conjoin (single_for fi.Ast.relation) with
    | Some pred -> Splan.Select (pred, sampled)
    | None -> sampled
  in
  (* Greedy left-to-right join ordering. *)
  let used_keys = Hashtbl.create 8 in
  let connect acc acc_rels fi =
    let rel = fi.Ast.relation in
    let key =
      List.find_opt
        (fun (((ra, _), (rb, _)) as k) ->
          (not (Hashtbl.mem used_keys k))
          && ((List.mem ra acc_rels && rb = rel) || (List.mem rb acc_rels && ra = rel)))
        join_keys
    in
    match key with
    | Some (((ra, ca), (_, cb)) as k) ->
        Hashtbl.add used_keys k ();
        let left_col, right_col = if List.mem ra acc_rels then (ca, cb) else (cb, ca) in
        Splan.Equi_join
          { left = acc;
            right = leaf fi;
            left_key = Expr.col left_col;
            right_key = Expr.col right_col }
    | None -> Splan.Cross (acc, leaf fi)
  in
  let plan, _ =
    match query.Ast.from with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun (acc, rels) fi -> (connect acc rels fi, fi.Ast.relation :: rels))
          (leaf first, [ first.Ast.relation ])
          rest
  in
  (* Join keys not consumed by the greedy order, non-key multi-relation
     predicates, and constant predicates become a final selection. *)
  let leftover_keys =
    List.filter_map
      (fun (((_, ca), (_, cb)) as k) ->
        if Hashtbl.mem used_keys k then None
        else Some Expr.(col ca = col cb))
      join_keys
  in
  let plan =
    match conjoin (constant_preds @ other_multi @ leftover_keys) with
    | Some pred -> Splan.Select (pred, plan)
    | None -> plan
  in
  { plan; query }
