type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

let derive t i =
  if i < 0 then invalid_arg "Rng.derive: negative stream index";
  { state = mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then go ()
    else Int64.to_int v
  in
  go ()

let float t =
  (* 53 top bits -> [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then
    invalid_arg (Printf.sprintf "Rng.sample_without_replacement: k=%d n=%d" k n);
  (* Floyd's algorithm. *)
  let chosen = Hashtbl.create (2 * k) in
  let out = Vec.create ~capacity:k () in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    let pick = if Hashtbl.mem chosen r then j else r in
    Hashtbl.replace chosen pick ();
    Vec.push out pick
  done;
  let a = Vec.to_array out in
  shuffle t a;
  a
