(* Tests for the SBox estimator: unbiasedness, the Y-hat correction,
   variance quality, intervals, covariance/AVG, subsampled estimation, and
   the WR baseline. *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Moments = Gus_estimator.Moments
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
module Sampler = Gus_sampling.Sampler
module Rng = Gus_util.Rng
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

(* A small deterministic single-relation population. *)
let population n =
  let schema =
    Schema.make
      [ { Schema.name = "k"; ty = Value.TInt };
        { Schema.name = "v"; ty = Value.TFloat } ]
  in
  let r = Relation.create_base ~name:"pop" schema in
  for i = 0 to n - 1 do
    Relation.append_row r
      [| Value.Int i; Value.Float (float_of_int ((i mod 7) + 1)) |]
  done;
  r

let vcol = Expr.col "v"

let db_small =
  lazy
    (let db = Database.create () in
     Database.add db (population 200);
     db)

let test_full_sample_is_exact () =
  (* With a = 1 (identity GUS = no sampling) the SBox returns the exact sum
     with zero variance. *)
  let pop = population 100 in
  let gus = Gus.identity [| "pop" |] in
  let r = Sbox.of_relation ~gus ~f:vcol pop in
  close "estimate = exact" (Relation.sum_column pop "v") r.Sbox.estimate;
  close "zero variance" 0.0 r.Sbox.variance;
  check Alcotest.int "tuples" 100 r.Sbox.n_tuples

let test_estimate_scale_up () =
  (* Deterministic: a fake 50% "sample" containing every other row. *)
  let pop = population 100 in
  let sample = Relation.derived ~name:"s" pop.Relation.schema [| "pop" |] in
  Relation.iter
    (fun t -> if t.Tuple.lineage.(0) mod 2 = 0 then Relation.append_tuple sample t)
    pop;
  let gus = Gus.bernoulli ~rel:"pop" 0.5 in
  let r = Sbox.of_relation ~gus ~f:vcol sample in
  let sample_sum = Relation.sum_column sample "v" in
  close "estimate = total/a" (sample_sum /. 0.5) r.Sbox.estimate;
  close "total_f recorded" sample_sum r.Sbox.total_f

let test_schema_mismatch_rejected () =
  let pop = population 10 in
  let gus = Gus.bernoulli ~rel:"other" 0.5 in
  check_bool "mismatch" true
    (try ignore (Sbox.of_relation ~gus ~f:vcol pop); false
     with Invalid_argument _ -> true)

let test_unbiased_estimate_mc () =
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.3, Splan.Scan "pop") in
  let truth = Sbox.exact db plan ~f:vcol in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let est = Summary.create () in
  for t = 1 to 600 do
    let sample = Splan.exec db (Rng.create (100 + t)) plan in
    Summary.add est (Sbox.of_relation ~gus ~f:vcol sample).Sbox.estimate
  done;
  close ~eps:(0.03 *. truth) "MC mean = truth" truth (Summary.mean est)

let test_variance_estimate_mc () =
  (* Mean estimated variance matches the exact Theorem-1 variance, and the
     MC spread of estimates matches both. *)
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.4, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let full = Splan.exec_exact db plan in
  let exact_var = Gus.variance gus ~y:(Moments.of_relation ~f:vcol full) in
  let est = Summary.create () and vars = Summary.create () in
  for t = 1 to 800 do
    let sample = Splan.exec db (Rng.create (7000 + t)) plan in
    let r = Sbox.of_relation ~gus ~f:vcol sample in
    Summary.add est r.Sbox.estimate;
    Summary.add vars r.Sbox.variance
  done;
  check_bool "mean sigma-hat within 15% of exact" true
    (Float.abs ((Summary.mean vars /. exact_var) -. 1.0) < 0.15);
  check_bool "MC variance within 25% of exact" true
    (Float.abs ((Summary.variance est /. exact_var) -. 1.0) < 0.25)

let test_y_hat_unbiased_mc () =
  (* E[Y-hat_S] = y_S for every subset, on a two-relation join. *)
  let db = Database.create () in
  Database.add db (population 60);
  let schema2 =
    Schema.make
      [ { Schema.name = "k2"; ty = Value.TInt };
        { Schema.name = "w"; ty = Value.TFloat } ]
  in
  let r2 = Relation.create_base ~name:"dim" schema2 in
  for i = 0 to 19 do
    Relation.append_row r2 [| Value.Int i; Value.Float (float_of_int (i + 1)) |]
  done;
  Database.add db r2;
  let plan =
    Splan.Equi_join
      { left = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "pop");
        right = Splan.Sample (Sampler.Bernoulli 0.6, Splan.Scan "dim");
        left_key = Expr.(Bin (Sub, col "k", Bin (Mul, int 3, col "k" / int 3)));
        right_key = Expr.(Bin (Sub, col "k2", Bin (Mul, int 17, col "k2" / int 17))) }
  in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let f = Expr.(col "v" * col "w") in
  let full = Splan.exec_exact db plan in
  let y_exact = Moments.of_relation ~f full in
  let sums = Array.map (fun _ -> Summary.create ()) y_exact in
  for t = 1 to 800 do
    let sample = Splan.exec db (Rng.create (31000 + t)) plan in
    let r = Sbox.of_relation ~gus ~f sample in
    Array.iteri (fun i yh -> Summary.add sums.(i) yh) r.Sbox.y_hat
  done;
  Array.iteri
    (fun i s ->
      let mean = Summary.mean s in
      check_bool
        (Printf.sprintf "y_hat_%d unbiased (mean %g vs %g)" i mean y_exact.(i))
        true
        (Float.abs (mean -. y_exact.(i))
        <= 0.12 *. Float.max 1.0 (Float.abs y_exact.(i))))
    sums

let test_interval_and_quantile () =
  let pop = population 100 in
  let gus = Gus.identity [| "pop" |] in
  let r = Sbox.of_relation ~gus ~f:vcol pop in
  let ci = Sbox.interval Interval.Normal r in
  check_bool "degenerate CI at exact answer" true
    (ci.Interval.lo = ci.Interval.hi && ci.Interval.lo = r.Sbox.estimate);
  close "median quantile = estimate" r.Sbox.estimate (Sbox.quantile r 0.5);
  check_bool "q monotone" true (Sbox.quantile r 0.1 <= Sbox.quantile r 0.9)

let test_negative_variance_clamped () =
  (* A pathological 1-tuple sample can produce a negative raw variance
     estimate; the report clamps it and keeps the raw value. *)
  let gus = Gus.bernoulli ~rel:"pop" 0.9 in
  let r = Sbox.of_pairs ~gus [| ([| 0 |], 1.0) |] in
  check_bool "variance non-negative" true (r.Sbox.variance >= 0.0);
  check_bool "raw recorded" true (r.Sbox.variance_raw <= r.Sbox.variance +. 1e-12)

let test_covariance_diagonal () =
  (* Cov(f,f) = Var(f) on the same sample. *)
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.3, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 11) plan in
  let r = Sbox.of_relation ~gus ~f:vcol sample in
  let cov = Sbox.covariance ~gus ~f:vcol ~g:vcol sample in
  close ~eps:1e-6 "Cov(f,f) = Var(f)" r.Sbox.variance_raw cov

let test_covariance_bilinearity () =
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.3, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 12) plan in
  let g2 = Expr.(col "v" * float 2.0) in
  let cov1 = Sbox.covariance ~gus ~f:vcol ~g:vcol sample in
  let cov2 = Sbox.covariance ~gus ~f:vcol ~g:g2 sample in
  close ~eps:(1e-9 *. Float.abs cov1) "Cov(f,2f) = 2 Cov(f,f)" (2.0 *. cov1) cov2

let test_avg_delta_method_mc () =
  (* AVG estimates should concentrate around the true average with the
     delta-method sd matching the MC spread loosely. *)
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.4, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let full = Splan.exec_exact db plan in
  let truth = Relation.sum_column full "v" /. float_of_int (Relation.cardinality full) in
  let est = Summary.create () and sds = Summary.create () in
  for t = 1 to 400 do
    let sample = Splan.exec db (Rng.create (900 + t)) plan in
    if Relation.cardinality sample > 0 then begin
      let r = Sbox.avg ~gus ~f:vcol sample in
      Summary.add est r.Sbox.ratio_estimate;
      Summary.add sds r.Sbox.ratio_stddev
    end
  done;
  close ~eps:(0.05 *. truth) "AVG unbiased-ish" truth (Summary.mean est);
  let mc_sd = sqrt (Summary.variance est) in
  check_bool "delta sd within 2x of MC sd" true
    (Summary.mean sds /. mc_sd > 0.5 && Summary.mean sds /. mc_sd < 2.0)

let test_ratio_zero_denominator () =
  let gus = Gus.bernoulli ~rel:"pop" 0.5 in
  check_bool "zero denominator" true
    (try
       ignore (Sbox.ratio ~gus ~f:(Expr.float 1.0) ~g:(Expr.float 0.0)
                 (Relation.derived ~name:"s"
                    (Schema.make [ { Schema.name = "v"; ty = Value.TFloat } ])
                    [| "pop" |]));
       false
     with Invalid_argument _ -> true)

let test_multi_linear_combination_invariant () =
  (* Var(w1 f + w2 g) computed from the covariance matrix must equal the
     variance of the combined expression analyzed directly. *)
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.3, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 13) plan in
  let f = vcol and g = Expr.(col "v" * col "v") in
  let m = Sbox.multi ~gus ~fs:[ ("f", f); ("g", g) ] sample in
  let est, sd = Sbox.linear_combination m [| 2.0; -1.0 |] in
  let combined = Expr.(Bin (Sub, Bin (Mul, float 2.0, f), g)) in
  let direct = Sbox.of_relation ~gus ~f:combined sample in
  close ~eps:(1e-6 *. Float.abs direct.Sbox.estimate) "estimate" direct.Sbox.estimate est;
  close ~eps:(1e-6 *. Float.max 1.0 (Float.abs direct.Sbox.variance_raw))
    "variance" (Float.max 0.0 direct.Sbox.variance_raw) (sd *. sd)

let test_multi_shape () =
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 14) plan in
  let m = Sbox.multi ~gus ~fs:[ ("a", vcol); ("b", vcol); ("one", Expr.float 1.0) ] sample in
  check Alcotest.int "3 labels" 3 (Array.length m.Sbox.labels);
  (* identical aggregates: correlation exactly 1 *)
  close ~eps:1e-6 "cov(a,b) = var(a)" m.Sbox.cov.(0).(0) m.Sbox.cov.(0).(1);
  close "symmetric" m.Sbox.cov.(1).(2) m.Sbox.cov.(2).(1);
  check_bool "weights length checked" true
    (try ignore (Sbox.linear_combination m [| 1.0 |]); false
     with Invalid_argument _ -> true)

let test_subsampled_close_to_full () =
  let db = Database.create () in
  Database.add db (population 5000);
  let plan = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 21) plan in
  let full = Sbox.of_relation ~gus ~f:vcol sample in
  let sub = Sbox.subsampled ~gus ~f:vcol ~target:800 ~seed:99 sample in
  close "same estimate" full.Sbox.estimate sub.Sbox.estimate;
  check_bool "subsample smaller" true (sub.Sbox.n_tuples < full.Sbox.n_tuples);
  check_bool "sd within 35%" true
    (full.Sbox.stddev = 0.0
    || Float.abs ((sub.Sbox.stddev /. full.Sbox.stddev) -. 1.0) < 0.35)

let test_subsampled_target_bigger_than_sample () =
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "pop") in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 22) plan in
  let sub = Sbox.subsampled ~gus ~f:vcol ~target:100000 ~seed:1 sample in
  check Alcotest.int "keeps everything" (Relation.cardinality sample) sub.Sbox.n_tuples

let test_run_end_to_end () =
  let db = Lazy.force db_small in
  let plan = Splan.Sample (Sampler.Bernoulli 0.5, Splan.Scan "pop") in
  let report, analysis = Sbox.run ~seed:5 db plan ~f:vcol in
  check_bool "gus is Bernoulli" true
    (Gus.equal_approx (Lazy.force analysis.Rewrite.gus) (Gus.bernoulli ~rel:"pop" 0.5));
  check_bool "estimate positive" true (report.Sbox.estimate > 0.0)

let test_skip_mask_matches_dense () =
  (* Half-sampled join: "s" carries no randomness, so the static analyzer
     kills every mask touching it.  The estimate is Σf/a either way
     (bit-identical); at n = 2 even the variance sum visits the same
     floats in the same order, so it is bit-identical too. *)
  let gus = Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.identity [| "s" |]) in
  let skip_mask = Gus_analysis.Cost.skip_mask gus in
  check Alcotest.int "skip mask = {s}" 2 skip_mask;
  let pairs =
    Array.init 120 (fun i ->
        ([| i mod 11; i mod 7 |], float_of_int ((i mod 5) + 1)))
  in
  let dense = Sbox.of_pairs ~gus pairs in
  let skipped = Sbox.of_pairs ~skip_mask ~gus pairs in
  let bits = Int64.bits_of_float in
  check_bool "estimate bit-identical" true
    (Int64.equal (bits dense.Sbox.estimate) (bits skipped.Sbox.estimate));
  check_bool "variance bit-identical at n=2" true
    (Int64.equal (bits dense.Sbox.variance) (bits skipped.Sbox.variance));
  Array.iteri
    (fun s yh ->
      if s land skip_mask <> 0 then close "dead y_hat pinned to 0" 0.0 yh
      else
        check_bool "live y_hat bit-identical" true
          (Int64.equal (bits dense.Sbox.y_hat.(s)) (bits yh)))
    skipped.Sbox.y_hat;
  (* y_hat_of_moments agrees with the report's correction under the mask. *)
  let y = Moments.of_pairs ~skip_mask ~n_rels:2 pairs in
  let yh = Sbox.y_hat_of_moments ~skip_mask ~gus y in
  Array.iteri
    (fun s v ->
      check_bool "y_hat_of_moments matches report" true
        (Int64.equal (bits skipped.Sbox.y_hat.(s)) (bits v)))
    yh

let test_query1_fixture_pinned () =
  (* End-to-end regression pin: the full Query-1 pipeline (TPC-H generator →
     sampled plan execution → SBox) must keep producing the values the seed
     implementation produced (captured at scale 0.1, exec seed 5, before the
     moments kernel rewrite).  Catches any semantic drift in the hot-path
     optimizations; tolerances only absorb float summation-order noise. *)
  let db = Gus_experiments.Harness.db_cached ~scale:0.1 in
  let plan = Gus_experiments.Harness.query1_plan () in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Rng.create 5) plan in
  let r = Sbox.of_relation ~gus ~f:Gus_experiments.Harness.revenue_f sample in
  let close_rel what expected actual =
    close ~eps:(1e-9 *. Float.max 1.0 (Float.abs expected)) what expected actual
  in
  check Alcotest.int "n_tuples" 399 r.Sbox.n_tuples;
  close_rel "total_f" 2011402.2008122066 r.Sbox.total_f;
  close_rel "estimate" 30171033.0121831 r.Sbox.estimate;
  close_rel "variance" 3525763563611.75 r.Sbox.variance;
  close_rel "stddev" 1877701.6705567874 r.Sbox.stddev;
  let y_exp =
    [| 906765469458630.62; 255103066015.23785; 768145494887.45654;
       255103066015.23795 |]
  in
  check Alcotest.int "y_hat length" 4 (Array.length r.Sbox.y_hat);
  Array.iteri
    (fun i expected ->
      close_rel (Printf.sprintf "y_hat.(%d)" i) expected r.Sbox.y_hat.(i))
    y_exp

let test_wr_baseline_unbiased () =
  let pop = population 300 in
  let truth = Relation.sum_column pop "v" in
  let est = Summary.create () in
  for t = 1 to 500 do
    let sample = Sampler.apply (Sampler.Wr 60) (Rng.create (50 + t)) pop in
    let r = Gus_estimator.Wr_baseline.estimate_sum ~population:300 ~f:vcol sample in
    Summary.add est r.Gus_estimator.Wr_baseline.estimate
  done;
  close ~eps:(0.03 *. truth) "WR estimate unbiased" truth (Summary.mean est)

let test_wr_baseline_empty () =
  let pop = population 0 in
  let r =
    Gus_estimator.Wr_baseline.estimate_sum ~population:0 ~f:vcol
      (Sampler.apply (Sampler.Wr 5) (Rng.create 1) pop)
  in
  close "empty estimate" 0.0 r.Gus_estimator.Wr_baseline.estimate

let () =
  Alcotest.run "gus_estimator.sbox"
    [ ( "estimate",
        [ Alcotest.test_case "identity GUS = exact" `Quick test_full_sample_is_exact;
          Alcotest.test_case "scale-up" `Quick test_estimate_scale_up;
          Alcotest.test_case "schema mismatch" `Quick test_schema_mismatch_rejected;
          Alcotest.test_case "unbiased (MC)" `Slow test_unbiased_estimate_mc;
          Alcotest.test_case "run end-to-end" `Quick test_run_end_to_end;
          Alcotest.test_case "skip-mask = dense (bit-identical)" `Quick
            test_skip_mask_matches_dense;
          Alcotest.test_case "Query-1 fixture pinned to seed values" `Quick
            test_query1_fixture_pinned ] );
      ( "variance",
        [ Alcotest.test_case "sigma-hat quality (MC)" `Slow test_variance_estimate_mc;
          Alcotest.test_case "Y-hat unbiased per subset (MC)" `Slow test_y_hat_unbiased_mc;
          Alcotest.test_case "negative clamped" `Quick test_negative_variance_clamped ] );
      ( "intervals",
        [ Alcotest.test_case "interval & quantile" `Quick test_interval_and_quantile ] );
      ( "covariance-avg",
        [ Alcotest.test_case "Cov(f,f) = Var" `Quick test_covariance_diagonal;
          Alcotest.test_case "bilinearity" `Quick test_covariance_bilinearity;
          Alcotest.test_case "AVG delta method (MC)" `Slow test_avg_delta_method_mc;
          Alcotest.test_case "ratio zero denominator" `Quick test_ratio_zero_denominator;
          Alcotest.test_case "multi: linear combination" `Quick test_multi_linear_combination_invariant;
          Alcotest.test_case "multi: shape" `Quick test_multi_shape ] );
      ( "subsampled",
        [ Alcotest.test_case "close to full-sample analysis" `Quick test_subsampled_close_to_full;
          Alcotest.test_case "oversized target" `Quick test_subsampled_target_bigger_than_sample ] );
      ( "wr-baseline",
        [ Alcotest.test_case "unbiased on single relation" `Slow test_wr_baseline_unbiased;
          Alcotest.test_case "empty sample" `Quick test_wr_baseline_empty ] ) ]
