module Subset = Gus_util.Subset

(* A symbolic sum-of-products representation of the second-moment vector
   b̄: every entry is

     b_T  =  Σ_k  w_k · Π_i  φ_k,i(i ∈ T)

   with one factor φ per lineage relation per term.  Prop 6 (join) keeps
   the form closed by concatenating factor lists, Prop 8 (compact) by
   multiplying factors pointwise, and Prop 7 (union) by distributing the
   shifted product (1−2a₁+b₁)(1−2a₂+b₂) over both operands' terms — so an
   independent-Bernoulli-style design stays a *single* term no matter how
   many relations it spans, and nothing ever materializes 2^n floats.

   Float discipline: [a] is maintained with exactly the dense operators'
   expressions, and every per-relation factor is combined with the same
   multiplication the dense combinator would apply to the corresponding
   b-entry.  For product-form designs (no unions) evaluating a term is the
   same left-to-right chain of [*.] the dense fold performed, so
   materialized entries are bit-identical to the dense path's — the
   property the estimator's byte-identity gates rely on. *)

type term = {
  w : float;  (** scalar weight; 1.0 for pure product designs *)
  lo : float array;  (** φ_i(false): factor value when i ∉ T *)
  hi : float array;  (** φ_i(true): factor value when i ∈ T *)
}

type repr =
  | Sop of term list
  | Dense of Gus.t
      (** fallback for designs whose term count blew past {!term_budget}
          inside the dense-representable width *)

type t = {
  rels : string array;
  a : float;
  repr : repr;
}

let incompatible fmt =
  Printf.ksprintf (fun s -> raise (Gus.Incompatible s)) fmt

let max_rels = Subset.max_mask_bits

let check_width ~what n =
  if n > max_rels then
    incompatible
      "Symalg.%s: %d relations exceed the %d-bit subset-mask limit" what n
      max_rels

let check_disjoint rels =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      if Hashtbl.mem seen r then
        invalid_arg
          (Printf.sprintf "Symalg: duplicate relation %s in lineage schema" r);
      Hashtbl.add seen r ())
    rels

let check_prob what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Symalg: %s = %g not in [0,1]" what p)

let n_rels t = Array.length t.rels
let full_mask t = Subset.full_wide (n_rels t)

(* ---- evaluation ---- *)

let[@inline] eval_term n (tm : term) s =
  let r = ref tm.w in
  for i = 0 to n - 1 do
    r :=
      !r
      *. (if s land (1 lsl i) <> 0 then Array.unsafe_get tm.hi i
          else Array.unsafe_get tm.lo i)
  done;
  !r

let eval_sop n terms s =
  match terms with
  | [] -> 0.0
  | t0 :: rest ->
      List.fold_left (fun acc tm -> acc +. eval_term n tm s) (eval_term n t0 s)
        rest

(* Union SoPs can cancel to tiny negatives exactly where the dense union
   operator clamps; products of probabilities never exceed 1 but the same
   cancellations could overshoot by an ulp. *)
let clamp01 v = Float.max 0.0 (Float.min 1.0 v)

let b_get t s =
  match t.repr with
  | Dense g -> Gus.b_get g s
  | Sop terms ->
      if s = full_mask t then t.a
      else clamp01 (eval_sop (n_rels t) terms s)

(* ---- constructors ---- *)

let const_term n v = { w = v; lo = Array.make n 1.0; hi = Array.make n 1.0 }

let constant rels v =
  check_disjoint rels;
  check_width ~what:"constant" (Array.length rels);
  check_prob "constant" v;
  { rels = Array.copy rels; a = v; repr = Sop [ const_term (Array.length rels) v ] }

let identity rels = constant rels 1.0
let null rels = constant rels 0.0

let bernoulli ~rel p =
  check_prob "p" p;
  { rels = [| rel |];
    a = p;
    repr = Sop [ { w = 1.0; lo = [| p *. p |]; hi = [| p |] } ] }

let wor ~rel ~n ~out_of =
  if out_of < 1 then invalid_arg "Symalg.wor: population must be >= 1";
  if n < 0 || n > out_of then
    invalid_arg (Printf.sprintf "Symalg.wor: n=%d out of [0,%d]" n out_of);
  let nf = float_of_int n and cf = float_of_int out_of in
  let a = nf /. cf in
  let b_empty =
    if out_of = 1 then 0.0 else nf *. (nf -. 1.0) /. (cf *. (cf -. 1.0))
  in
  { rels = [| rel |];
    a;
    repr = Sop [ { w = 1.0; lo = [| b_empty |]; hi = [| a |] } ] }

(* One Bernoulli draw keeps or drops *all* relations of the lineage at
   once: b_T = p² for proper T (two independent survivals) and p on the
   diagonal.  As an SoP: a constant p² plus a (p−p²)-weighted term that is
   non-zero only on the full subset. *)
let bernoulli_over rels p =
  check_prob "p" p;
  check_disjoint rels;
  let n = Array.length rels in
  check_width ~what:"bernoulli_over" n;
  { rels = Array.copy rels;
    a = p;
    repr =
      Sop
        [ const_term n (p *. p);
          { w = p -. (p *. p); lo = Array.make n 0.0; hi = Array.make n 1.0 }
        ] }

let of_gus (g : Gus.t) = { rels = g.Gus.rels; a = g.Gus.a; repr = Dense g }

(* ---- densification ---- *)

let to_gus t =
  match t.repr with
  | Dense g -> g
  | Sop terms ->
      let n = n_rels t in
      if n > Subset.max_universe then
        incompatible
          "Symalg.to_gus: %d relations exceed the %d-relation dense limit \
           (the b\xcc\x84 array would hold 2\xe2\x81\xbf entries)"
          n Subset.max_universe;
      let b =
        Array.init (Subset.count n) (fun s -> clamp01 (eval_sop n terms s))
      in
      Gus.make ~rels:t.rels ~a:t.a ~b

(* ---- the rule book ---- *)

(* Each rule either leaves the term list alone or returns a *strictly
   shorter* one, so the fixpoint below terminates after at most
   [List.length terms] firings. *)

let is_zero_term tm = tm.w = 0.0

let is_null_term tm =
  let n = Array.length tm.lo in
  let rec go i = i < n && ((tm.lo.(i) = 0.0 && tm.hi.(i) = 0.0) || go (i + 1)) in
  go 0

let same_factors t1 t2 =
  (* Bitwise float equality on purpose: merging is only a simplification
     when the merged term evaluates like the pair did. *)
  let n = Array.length t1.lo in
  Array.length t2.lo = n
  &&
  let rec go i =
    i >= n
    || (Int64.bits_of_float t1.lo.(i) = Int64.bits_of_float t2.lo.(i)
        && Int64.bits_of_float t1.hi.(i) = Int64.bits_of_float t2.hi.(i)
        && go (i + 1))
  in
  go 0

type rule = { rule_name : string; fire : term list -> term list option }

let filter_rule name pred =
  { rule_name = name;
    fire =
      (fun terms ->
        (* Never drop the last term: an all-zero SoP is still a valid
           (null) b̄ and downstream code expects at least one term. *)
        let kept = List.filter (fun tm -> not (pred tm)) terms in
        if kept <> [] && List.length kept < List.length terms then Some kept
        else None) }

let rule_merge =
  { rule_name = "merge-duplicate-terms";
    fire =
      (fun terms ->
        let merged = ref false in
        let out = ref [] in
        List.iter
          (fun tm ->
            match List.find_opt (fun (t0, _) -> same_factors t0 tm) !out with
            | Some (_, wref) ->
                wref := !wref +. tm.w;
                merged := true
            | None -> out := !out @ [ (tm, ref tm.w) ])
          terms;
        if !merged then
          Some (List.map (fun (tm, wref) -> { tm with w = !wref }) !out)
        else None) }

let rule_book =
  [ filter_rule "drop-zero-term" is_zero_term;
    filter_rule "drop-null-term" is_null_term;
    rule_merge ]

let simplify t =
  match t.repr with
  | Dense _ -> (t, [])
  | Sop terms ->
      let log = ref [] in
      let rec fix terms =
        match
          List.find_map
            (fun r ->
              Option.map (fun ts -> (r.rule_name, ts)) (r.fire terms))
            rule_book
        with
        | Some (name, terms') ->
            log := name :: !log;
            fix terms'
        | None -> terms
      in
      let terms = fix terms in
      ({ t with repr = Sop terms }, List.rev !log)

let term_count t =
  match t.repr with Sop terms -> List.length terms | Dense _ -> 0

(* Deeply nested unions multiply term counts; past this budget the SoP is
   abandoned for the dense fallback (when the width still allows one). *)
let term_budget = 256

let settle t =
  match t.repr with
  | Dense _ -> t
  | Sop terms ->
      if List.length terms <= term_budget then t
      else
        let t, _ = simplify t in
        if term_count t <= term_budget then t
        else if n_rels t <= Subset.max_universe then of_gus (to_gus t)
        else
          incompatible
            "Symalg: %d-relation design needs %d sum-of-products terms \
             (budget %d) and is too wide for the dense fallback: the design \
             is too entangled to analyze"
            (n_rels t) (term_count t) term_budget

(* ---- combinators (Props 6/7/8, Section 4) ---- *)

let require_same_schema op g1 g2 =
  if not
       (Array.length g1.rels = Array.length g2.rels
       && Array.for_all2 String.equal g1.rels g2.rels)
  then
    incompatible "%s: lineage schemas differ ([%s] vs [%s])" op
      (String.concat "," (Array.to_list g1.rels))
      (String.concat "," (Array.to_list g2.rels))

let cross t1 t2 ~f =
  List.concat_map (fun x -> List.map (fun y -> f x y) t2) t1

(* Densify both operands and apply the dense op; [to_gus] raises when a
   side is too wide to materialize. *)
let dense2 op g1 g2 = of_gus (op (to_gus g1) (to_gus g2))

let join g1 g2 =
  Array.iter
    (fun r ->
      if Array.exists (String.equal r) g1.rels then
        incompatible "join: relation %s appears on both sides (self-join?)" r)
    g2.rels;
  let n = Array.length g1.rels + Array.length g2.rels in
  check_width ~what:"join" n;
  match (g1.repr, g2.repr) with
  | Sop t1, Sop t2 ->
      let terms =
        cross t1 t2 ~f:(fun x y ->
            { w = x.w *. y.w;
              lo = Array.append x.lo y.lo;
              hi = Array.append x.hi y.hi })
      in
      settle
        { rels = Array.append g1.rels g2.rels;
          a = g1.a *. g2.a;
          repr = Sop terms }
  | _ -> dense2 Gus.join g1 g2

let compact g1 g2 =
  require_same_schema "compact" g1 g2;
  match (g1.repr, g2.repr) with
  | Sop t1, Sop t2 ->
      let terms =
        cross t1 t2 ~f:(fun x y ->
            { w = x.w *. y.w;
              lo = Array.map2 (fun a b -> a *. b) x.lo y.lo;
              hi = Array.map2 (fun a b -> a *. b) x.hi y.hi })
      in
      settle { rels = g1.rels; a = g1.a *. g2.a; repr = Sop terms }
  | _ -> dense2 Gus.compact g1 g2

let union g1 g2 =
  require_same_schema "union" g1 g2;
  match (g1.repr, g2.repr) with
  | Sop t1, Sop t2 ->
      let n = Array.length g1.rels in
      let a = g1.a +. g2.a -. (g1.a *. g2.a) in
      (* Dense Prop 7:  b = (2a−1) + (1−2a₁+b₁)(1−2a₂+b₂).  Distribute the
         product over the shifted operands; the shifts and the leading
         constant are all-ones factor terms carrying the constant as their
         weight.  Constant weights may be negative — terms are not
         probabilities, only the evaluated sum is. *)
      let shift c terms = const_term n c :: terms in
      let t1 = shift (1.0 -. (2.0 *. g1.a)) t1 in
      let t2 = shift (1.0 -. (2.0 *. g2.a)) t2 in
      let crossed =
        cross t1 t2 ~f:(fun x y ->
            { w = x.w *. y.w;
              lo = Array.map2 (fun a b -> a *. b) x.lo y.lo;
              hi = Array.map2 (fun a b -> a *. b) x.hi y.hi })
      in
      let terms = const_term n ((2.0 *. a) -. 1.0) :: crossed in
      let t = { rels = g1.rels; a; repr = Sop terms } in
      let t, _ = simplify t in
      settle t
  | _ -> dense2 Gus.union g1 g2

let extend g extra =
  if Array.length extra = 0 then g else join g (identity extra)

let permute g target =
  let n = n_rels g in
  if Array.length target <> n then incompatible "permute: schema size mismatch";
  let pos_of r =
    let rec go i =
      if i >= n then incompatible "permute: %s not in schema" r
      else if String.equal g.rels.(i) r then i
      else go (i + 1)
    in
    go 0
  in
  let old_pos = Array.map pos_of target in
  check_disjoint target;
  match g.repr with
  | Sop terms ->
      let terms =
        List.map
          (fun tm ->
            { tm with
              lo = Array.map (fun p -> tm.lo.(p)) old_pos;
              hi = Array.map (fun p -> tm.hi.(p)) old_pos })
          terms
      in
      { rels = Array.copy target; a = g.a; repr = Sop terms }
  | Dense d -> of_gus (Gus.permute d target)

(* ---- structure queries ---- *)

let live_mask t =
  match t.repr with
  | Sop terms ->
      List.fold_left
        (fun acc tm ->
          let m = ref acc in
          Array.iteri
            (fun i lo -> if lo <> tm.hi.(i) then m := !m lor (1 lsl i))
            tm.lo;
          !m)
        0 terms
  | Dense g ->
      (* Mirror {!Gus_analysis.Cost}'s bitwise b-equality scan. *)
      let n = Gus.n_rels g in
      let nmasks = Subset.count n in
      let dead = ref 0 in
      for i = 0 to n - 1 do
        let bit = 1 lsl i in
        let inert = ref true in
        let s = ref 0 in
        while !inert && !s < nmasks do
          if
            !s land bit = 0
            && not (Gus.b_get g !s = Gus.b_get g (!s lor bit))
          then inert := false;
          s := !s + 1
        done;
        if !inert then dead := !dead lor bit
      done;
      Subset.diff (Subset.full n) !dead

(* All coefficients c_S of a term factor as
   w · Π_{i∈S}(hi−lo) · Π_{i∉S}lo, so a SoP whose every term has w ≥ 0 and
   hi ≥ lo ≥ 0 per factor has c_S ≥ 0 for every S — Theorem 1's Σ c_S⁺
   then telescopes to b_full = a in closed form.  It also makes b_T
   monotone in T, so no entry can exceed the diagonal. *)
let nonneg_monotone t =
  match t.repr with
  | Dense _ -> false
  | Sop terms ->
      List.for_all
        (fun tm ->
          tm.w >= 0.0
          &&
          let n = Array.length tm.lo in
          let rec go i =
            i >= n || (tm.lo.(i) >= 0.0 && tm.hi.(i) >= tm.lo.(i) && go (i + 1))
          in
          go 0)
        terms

(* Restrict to the relations in [live], folding each dropped factor's
   (constant: lo = hi is required) value into the weight.  Exact precisely
   because dropped factors are structurally dead. *)
let project t live =
  let n = n_rels t in
  if Subset.diff live (Subset.full_wide n) <> 0 then
    invalid_arg "Symalg.project: live mask has bits outside the universe";
  if live = Subset.full_wide n then t
  else if not (Subset.subset (live_mask t) live) then
    incompatible "project: the dropped relations are not design-inert"
  else
    match t.repr with
    | Dense _ ->
        (* Unused in practice (wide plans never carry a dense repr);
           densifiable designs can be projected via the dense algebra. *)
        incompatible "project: dense representation"
    | Sop terms ->
        let keep = Array.of_list (Subset.elements live) in
        let dead = Subset.elements (Subset.diff (Subset.full_wide n) live) in
        let rels' = Array.map (fun i -> t.rels.(i)) keep in
        let terms' =
          List.map
            (fun tm ->
              { w = List.fold_left (fun acc i -> acc *. tm.lo.(i)) tm.w dead;
                lo = Array.map (fun i -> tm.lo.(i)) keep;
                hi = Array.map (fun i -> tm.hi.(i)) keep })
            terms
        in
        { rels = rels'; a = t.a; repr = Sop terms' }

let is_identity ?(eps = 1e-9) t =
  match t.repr with
  | Dense g -> Gus.equal_approx ~eps g (Gus.identity g.Gus.rels)
  | Sop _ ->
      Float.abs (t.a -. 1.0) <= eps
      &&
      let live = live_mask t in
      Subset.cardinal live <= 16
      &&
      let ok = ref true in
      Subset.iter_subsets live (fun s ->
          if Float.abs (b_get t s -. 1.0) > eps then ok := false);
      !ok

let subset_name t s =
  if s = Subset.empty then "{}" else Subset.to_string ~names:t.rels s

let pp ppf t =
  Format.fprintf ppf "SoP over [%s]: a = %.6g"
    (String.concat "," (Array.to_list t.rels))
    t.a;
  match t.repr with
  | Dense g -> Format.fprintf ppf ",@ dense fallback: %a" Gus.pp g
  | Sop terms ->
      Format.fprintf ppf ", %d term(s)" (List.length terms);
      List.iter
        (fun tm ->
          Format.fprintf ppf "@ + %.6g" tm.w;
          Array.iteri
            (fun i lo ->
              Format.fprintf ppf " \xc2\xb7 %s:(%.6g|%.6g)" t.rels.(i) lo
                tm.hi.(i))
            tm.lo)
        terms

let to_string t = Format.asprintf "@[%a@]" pp t
