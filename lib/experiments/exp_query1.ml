module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sampler = Gus_sampling.Sampler
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

let paper_values =
  [ ("a", 6.667e-4);
    ("b{}", 4.44e-7);
    ("b{lineitem}", 4.44e-6);
    ("b{orders}", 6.667e-5);
    ("b{lineitem,orders}", 6.667e-4) ]

let paper_card = function
  | "orders" -> 150000
  | "lineitem" -> 6000000
  | r -> invalid_arg r

let plan () =
  Splan.Equi_join
    { left = Splan.Sample (Sampler.Bernoulli 0.1, Splan.Scan "lineitem");
      right = Splan.Sample (Sampler.Wor 1000, Splan.Scan "orders");
      left_key = Expr.col "l_orderkey";
      right_key = Expr.col "o_orderkey" }

let derived () =
  Lazy.force (Rewrite.analyze ~card:paper_card (plan ())).Rewrite.gus

let run () =
  Harness.section "T2"
    "Examples 1-3 / Figure 2 - GUS derivation for Query 1 (B(0.1) x WOR(1000/150k))";
  let g = derived () in
  let t =
    Tablefmt.create ~headers:[ "coefficient"; "paper"; "derived"; "rel.diff" ]
  in
  let lookup name =
    if name = "a" then g.Gus.a
    else begin
      let mask = ref (-1) in
      for s = 0 to Array.length g.Gus.b - 1 do
        if "b" ^ Gus.subset_name g s = name then mask := s
      done;
      if !mask < 0 then invalid_arg name else Gus.b_get g !mask
    end
  in
  List.iter
    (fun (name, paper) ->
      let v = lookup name in
      Tablefmt.add_row t
        [ name; Harness.fcell paper; Harness.fcell v;
          Printf.sprintf "%.3f%%" (100.0 *. Float.abs (v -. paper) /. paper) ])
    paper_values;
  Tablefmt.print t;
  print_newline ();
  print_endline "Plan transformation (Figure 2 (a) -> (c)):";
  Format.printf "%a@." Splan.pp_tree (plan ());
  Format.printf "  =SOA=>  SUM o G(a,b) o join@.@.";
  Format.printf "  @[%a@]@." Gus.pp g
