-- AVG via the delta method, grouped.
SELECT AVG(l_extendedprice)
FROM lineitem TABLESAMPLE (50 PERCENT)
GROUP BY l_returnflag;
