lib/online/progressive.ml: Float Gus_core Gus_estimator Gus_sampling Gus_stats Gus_util Int64 List
