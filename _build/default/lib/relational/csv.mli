(** Minimal CSV import/export for base relations (no quoting: the
    generators never emit commas inside fields; a field containing a comma
    raises on export). *)

val save : path:string -> Relation.t -> unit
val load : path:string -> name:string -> Schema.t -> Relation.t
(** Parses each cell per the declared column type; raises [Failure] with a
    line number on malformed input. *)
