module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
open Gus_relational

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

let fcell = Gus_util.Tablefmt.float_cell ~digits:3

let query1_f = Expr.(col "l_discount" * (float 1.0 - col "l_tax"))
let revenue_f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount"))

let price_filter = Expr.(col "l_extendedprice" > float 100.0)

let query1_plan ?(bernoulli = 0.1) ?(wor = 1000) () =
  Splan.Select
    ( price_filter,
      Splan.Equi_join
        { left = Splan.Sample (Sampler.Bernoulli bernoulli, Splan.Scan "lineitem");
          right = Splan.Sample (Sampler.Wor wor, Splan.Scan "orders");
          left_key = Expr.col "l_orderkey";
          right_key = Expr.col "o_orderkey" } )

let join2_plan ~p_lineitem ~p_orders =
  Splan.Equi_join
    { left = Splan.Sample (Sampler.Bernoulli p_lineitem, Splan.Scan "lineitem");
      right = Splan.Sample (Sampler.Bernoulli p_orders, Splan.Scan "orders");
      left_key = Expr.col "l_orderkey";
      right_key = Expr.col "o_orderkey" }

let join3_plan ~p_lineitem ~p_orders ~p_customer =
  Splan.Equi_join
    { left = join2_plan ~p_lineitem ~p_orders;
      right = Splan.Sample (Sampler.Bernoulli p_customer, Splan.Scan "customer");
      left_key = Expr.col "o_custkey";
      right_key = Expr.col "c_custkey" }

let single_plan ~p =
  Splan.Sample (Sampler.Bernoulli p, Splan.Scan "lineitem")

type trial_stats = {
  trials : int;
  truth : float;
  mean_estimate : float;
  bias_pct : float;
  mean_rel_err_pct : float;
  rmse_over_truth_pct : float;
  mc_variance : float;
  mean_est_variance : float;
  coverage_normal : float;
  coverage_chebyshev : float;
  mean_ci_width_rel : float;
}

let trials ?(trials = 200) ?(seed = 1) db plan ~f =
  let truth = Sbox.exact db plan ~f in
  let analysis = Rewrite.analyze_db db plan in
  let gus = analysis.Rewrite.gus in
  let estimates = Summary.create () in
  let est_var = Summary.create () in
  let rel_err = Summary.create () in
  let ci_width = Summary.create () in
  let hits_normal = ref 0 and hits_cheby = ref 0 in
  for t = 1 to trials do
    let rng = Gus_util.Rng.create (seed + (7919 * t)) in
    let sample = Splan.exec db rng plan in
    let r = Sbox.of_relation ~gus ~f sample in
    Summary.add estimates r.Sbox.estimate;
    Summary.add est_var r.Sbox.variance;
    Summary.add rel_err (Summary.relative_error ~truth r.Sbox.estimate);
    let ci_n = Sbox.interval Interval.Normal r in
    let ci_c = Sbox.interval Interval.Chebyshev r in
    Summary.add ci_width (Interval.width ci_n /. Float.abs truth);
    if Interval.contains ci_n truth then incr hits_normal;
    if Interval.contains ci_c truth then incr hits_cheby
  done;
  let tf = float_of_int trials in
  { trials;
    truth;
    mean_estimate = Summary.mean estimates;
    bias_pct = 100.0 *. (Summary.mean estimates -. truth) /. truth;
    mean_rel_err_pct = 100.0 *. Summary.mean rel_err;
    rmse_over_truth_pct =
      (let acc = ref 0.0 in
       (* RMSE via MC variance + bias. *)
       acc := Summary.variance_population estimates;
       let bias = Summary.mean estimates -. truth in
       100.0 *. sqrt (!acc +. (bias *. bias)) /. Float.abs truth);
    mc_variance = Summary.variance estimates;
    mean_est_variance = Summary.mean est_var;
    coverage_normal = float_of_int !hits_normal /. tf;
    coverage_chebyshev = float_of_int !hits_cheby /. tf;
    mean_ci_width_rel = Summary.mean ci_width }

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let median_time_us ?(repeats = 9) f =
  let times =
    Array.init repeats (fun _ ->
        let _, dt = time f in
        dt *. 1e6)
  in
  Array.sort compare times;
  times.(repeats / 2)

let cache : (float, Database.t) Hashtbl.t = Hashtbl.create 4

let db_cached ~scale =
  match Hashtbl.find_opt cache scale with
  | Some db -> db
  | None ->
      let db = Gus_tpch.Tpch.generate ~seed:20130630 ~scale () in
      Hashtbl.add cache scale db;
      db
