module Online = Gus_online.Online
module Interval = Gus_stats.Interval
module Sbox = Gus_estimator.Sbox
module Tablefmt = Gus_util.Tablefmt

let run ?(scale = 1.0) () =
  Harness.section "E8"
    "Online aggregation via GUS: interval shrinkage under random-order scans";
  let db = Harness.db_cached ~scale in
  let plan = Harness.join2_plan ~p_lineitem:1.0 ~p_orders:1.0 in
  let f = Harness.revenue_f in
  let truth = Sbox.exact db plan ~f in
  let checkpoints = Online.run ~seed:5 db ~plan ~f ~checkpoints:10 in
  let t =
    Tablefmt.create
      ~headers:
        [ "scanned %"; "estimate"; "rel.err %"; "95% CI width / truth";
          "truth inside" ]
  in
  List.iter
    (fun cp ->
      let frac =
        List.fold_left (fun acc (_, fr) -> acc +. fr) 0.0 cp.Online.fractions
        /. float_of_int (List.length cp.Online.fractions)
      in
      let est = cp.Online.report.Sbox.estimate in
      Tablefmt.add_row t
        [ Printf.sprintf "%.0f" (100.0 *. frac);
          Harness.fcell est;
          Printf.sprintf "%.2f" (100.0 *. Float.abs (est -. truth) /. truth);
          Printf.sprintf "%.4f" (Interval.width cp.Online.interval /. truth);
          (* at 100% the interval is a point; execution-order float
             rounding can miss exact equality *)
          string_of_bool
            (Interval.contains cp.Online.interval truth
            || Float.abs (est -. truth) < 1e-9 *. Float.abs truth) ])
    checkpoints;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: monotone-ish width decay ~ sqrt((1-f)/f), exact \
     answer with zero width at 100%% (WOR degenerates to identity GUS).\n"
