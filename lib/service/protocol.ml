(* Deprecated compatibility shim over the Wire + Session split.

   Historically this module was the whole protocol: rendering, dispatch,
   and the stdio loop, all keyed by Engine.t.  The rendering now lives
   in Wire, dispatch and per-connection state in Session; what remains
   here is the old engine-keyed surface for existing callers (the CLI's
   --json error path, replay's source decoding, tests).

   The engine-keyed entry points need a Session to dispatch through, so
   the shim memoizes one default session per engine (by physical
   equality): repeated handle_line calls on one engine keep seeing the
   same handle namespace, exactly like the old global-table behavior. *)

let error_of_exn = Wire.error_of_exn
let response_json ~handle o = Wire.response_json ~handle o
let source_of_request = Wire.source_of_request
let result_json = Wire.result_json
let exact_json = Wire.exact_json

(* Most-recently-used first, capped: the shim must not keep every
   engine a test suite ever created alive. *)
let sessions : (Engine.t * Session.t) list ref = ref []
let max_sessions = 64

let default_session engine =
  match List.find_opt (fun (e, _) -> e == engine) !sessions with
  | Some (_, s) -> s
  | None ->
      let s = Session.create engine in
      let keep =
        List.filteri (fun i _ -> i < max_sessions - 1) !sessions
      in
      sessions := (engine, s) :: keep;
      s

let handle_request engine j = Session.handle_request (default_session engine) j

let handle_line engine line =
  match Session.handle (default_session engine) line with
  | Some response -> response
  | None -> Json.to_string (Wire.error_json "bad_json" "empty request line")

let serve ?after engine ic oc = Session.run ?after (default_session engine) ic oc
