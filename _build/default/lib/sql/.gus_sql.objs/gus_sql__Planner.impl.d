lib/sql/planner.ml: Ast Database Expr Gus_core Gus_relational Gus_sampling Hashtbl List Option Printf Relation Schema String
