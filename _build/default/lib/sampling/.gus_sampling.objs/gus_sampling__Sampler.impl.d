lib/sampling/sampler.ml: Array Float Format Gus_relational Gus_util Printf Relation String Tuple
