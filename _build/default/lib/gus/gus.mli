(** Generalized Uniform Sampling quasi-operators and their algebra
    (Sections 3–5 of the paper).

    A value [G(a, b̄)] describes a randomized filter over tuples whose
    lineage ranges over an ordered set of base relations [rels]:
    - [a = P(t ∈ sample)], identical for every tuple;
    - [b_T = P(t, t' ∈ sample)] for tuples agreeing on exactly the lineage
      subset [T], stored densely as [b.(mask)] with [mask] a
      {!Gus_util.Subset.t} over positions in [rels].

    {b Diagonal convention.}  [b.(full)] is the probability for a pair
    agreeing on {e all} slots — i.e. the same tuple — so every constructor
    and combinator maintains [b.(full) = a].  Theorem 1's coefficients come
    out right with no special-casing (Figure 1 of the paper prints
    [b_R = a] for the same reason).

    Values of this type are never executed; they exist so that plans can be
    {e analyzed} (the paper's "quasi-operator"). *)

type t = private {
  rels : string array;  (** ordered lineage schema *)
  a : float;
  b : float array;      (** length [2^(Array.length rels)] *)
}

exception Incompatible of string
(** Raised when combining GUS values whose lineage schemas do not satisfy
    an operation's precondition (join needs disjoint, union/compaction need
    identical). *)

(** {1 Constructors} *)

val make : rels:string array -> a:float -> b:float array -> t
(** Checks array length, probability ranges, and the diagonal convention
    ([b.(full) = a] up to 1e-9, which it then enforces exactly). *)

val identity : string array -> t
(** [G(1, 1̄)], Proposition 4: inserting it anywhere changes nothing. *)

val null : string array -> t
(** [G(0, 0̄)]: blocks everything (the additive zero of Theorem 2). *)

val bernoulli : rel:string -> float -> t
(** Row-level Bernoulli(p) on one relation: [a = p], [b_∅ = p²],
    [b_rel = p] (Figure 1). *)

val wor : rel:string -> n:int -> out_of:int -> t
(** Fixed-size sampling without replacement: [a = n/N],
    [b_∅ = n(n−1)/(N(N−1))], [b_rel = n/N] (Figure 1).  Requires
    [0 ≤ n ≤ N] and [N ≥ 1]; [N = 1] sets [b_∅ = 0]. *)

val bernoulli_over : string array -> float -> t
(** Bernoulli(p) applied to a {e derived} relation with the given lineage
    schema: one independent coin per distinct result tuple, so
    [b_T = p²] for every proper [T] and [b_full = p].  This is what a plain
    [TABLESAMPLE] on an intermediate result means as a GUS. *)

(** {1 The algebra} *)

val join : t -> t -> t
(** Proposition 6 (and 9): disjoint lineage schemas; [a = a₁a₂],
    [b_T = b₁,T∩L₁ · b₂,T∩L₂].  Raises {!Incompatible} on overlap —
    the self-join limitation is inherent to GUS. *)

val compact : t -> t -> t
(** Proposition 8 (stacking / intersection): identical schemas,
    [a = a₁a₂], [b_T = b₁,T·b₂,T]. *)

val union : t -> t -> t
(** Proposition 7 (combining two samples of the same expression, duplicates
    removed by lineage): identical schemas, [a = a₁+a₂−a₁a₂],
    [b_T = 2a−1 + (1−2a₁+b₁,T)(1−2a₂+b₂,T)]. *)

val extend : t -> string array -> t
(** [extend g extra] joins [g] with {!identity}[ extra]: the Prop.-4 move
    that brings unsampled relations into scope. *)

val permute : t -> string array -> t
(** Reorder the lineage schema to the given permutation of [rels] (raises
    {!Incompatible} if it is not a permutation). *)

(** {1 Analysis (Theorem 1)} *)

val n_rels : t -> int
val b_get : t -> Gus_util.Subset.t -> float
val c_coefficients : t -> float array
(** [c.(S) = Σ_{T ⊆ S} (−1)^{|S|−|T|} · b.(T)] for every subset [S],
    computed with a signed fast Möbius transform in O(n·2ⁿ). *)

val c_naive : t -> float array
(** O(3ⁿ) direct summation — kept as an oracle for tests. *)

val variance : t -> y:float array -> float
(** [Σ_S (c_S / a²)·y_S − y_∅] given the data moments [y] indexed by
    subset mask.  This is the exact (non-asymptotic) variance of the
    Horvitz–Thompson-style estimate [X = (1/a) Σ f]. *)

val scale_up : t -> float -> float
(** [scale_up g total] is the unbiased estimate [total / a].  Raises
    {!Incompatible} when [a = 0]. *)

val d_correction : t -> s:Gus_util.Subset.t -> float array
(** Coefficients of the unbiased-Ŷ recursion (Section 6.3): the returned
    array is indexed by [T ⊆ complement s] (masks over the full universe;
    entries with [T ⊄ sᶜ] are 0) and holds
    [d_{s,s∪T} = Σ_{U⊆T} (−1)^{|T|−|U|} b.(s∪U)].
    [d_{s,s}] is entry [T = ∅]. *)

(** {1 Inspection} *)

val equal_approx : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Renders like the paper's tables: [a = …, b{} = …, b{o} = …, …]. *)

val to_string : t -> string
val subset_name : t -> Gus_util.Subset.t -> string
