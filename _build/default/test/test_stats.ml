(* Tests for gus_stats: Normal, Summary, Interval. *)

module Normal = Gus_stats.Normal
module Summary = Gus_stats.Summary
module Interval = Gus_stats.Interval

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-6) what expected actual =
  check (Alcotest.float eps) what expected actual

(* ---- Normal ---- *)

let test_erf_known () =
  close "erf 0" 0.0 (Normal.erf 0.0);
  close ~eps:1e-6 "erf 1" 0.8427007929 (Normal.erf 1.0);
  close ~eps:1e-6 "erf -1" (-0.8427007929) (Normal.erf (-1.0));
  close ~eps:1e-6 "erf 2" 0.9953222650 (Normal.erf 2.0);
  close ~eps:1e-7 "erf inf-ish" 1.0 (Normal.erf 6.0)

let test_cdf_known () =
  close "cdf 0" 0.5 (Normal.cdf 0.0);
  close ~eps:1e-6 "cdf 1.96" 0.9750021049 (Normal.cdf 1.96);
  close ~eps:1e-6 "cdf -1.96" 0.0249978951 (Normal.cdf (-1.96));
  close ~eps:1e-6 "cdf 1" 0.8413447461 (Normal.cdf 1.0)

let test_quantile_known () =
  close ~eps:1e-6 "median" 0.0 (Normal.quantile 0.5);
  close ~eps:1e-5 "z_95" 1.959963985 (Normal.quantile 0.975);
  close ~eps:1e-5 "q 0.05" (-1.644853627) (Normal.quantile 0.05);
  close ~eps:1e-4 "extreme" (-3.090232306) (Normal.quantile 0.001)

let test_quantile_cdf_roundtrip () =
  List.iter
    (fun p -> close ~eps:1e-6 "roundtrip" p (Normal.cdf (Normal.quantile p)))
    [ 0.001; 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999 ]

let test_quantile_domain () =
  Alcotest.check_raises "p=0" (Invalid_argument "Normal.quantile: p=0 not in (0,1)")
    (fun () -> ignore (Normal.quantile 0.0));
  Alcotest.check_raises "p=1" (Invalid_argument "Normal.quantile: p=1 not in (0,1)")
    (fun () -> ignore (Normal.quantile 1.0))

let test_chebyshev () =
  close ~eps:1e-9 "95%" (1.0 /. sqrt 0.05) (Normal.chebyshev_factor 0.95);
  close ~eps:1e-2 "paper's 4.47" 4.47 (Normal.chebyshev_factor 0.95);
  close ~eps:1e-9 "75% -> 2" 2.0 (Normal.chebyshev_factor 0.75)

let test_z95 () = close ~eps:1e-5 "z_95 constant" 1.959963985 Normal.z_95

(* ---- Summary ---- *)

let test_summary_empty () =
  let s = Summary.create () in
  check Alcotest.int "count" 0 (Summary.count s);
  close "mean" 0.0 (Summary.mean s);
  close "variance" 0.0 (Summary.variance s)

let test_summary_vs_naive () =
  let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let s = Summary.of_array data in
  close "mean" 5.0 (Summary.mean s);
  close "population variance" 4.0 (Summary.variance_population s);
  close ~eps:1e-9 "sample variance" (32.0 /. 7.0) (Summary.variance s);
  close "min" 2.0 (Summary.min s);
  close "max" 9.0 (Summary.max s);
  close "total" 40.0 (Summary.total s)

let test_summary_merge () =
  let all = Array.init 1000 (fun i -> sin (float_of_int i)) in
  let a = Summary.of_array (Array.sub all 0 400) in
  let b = Summary.of_array (Array.sub all 400 600) in
  let merged = Summary.merge a b in
  let whole = Summary.of_array all in
  close ~eps:1e-9 "merged mean" (Summary.mean whole) (Summary.mean merged);
  close ~eps:1e-9 "merged variance" (Summary.variance whole) (Summary.variance merged);
  check Alcotest.int "merged count" 1000 (Summary.count merged)

let test_summary_merge_empty () =
  let a = Summary.create () in
  let b = Summary.of_array [| 1.0; 2.0 |] in
  close "empty+b mean" 1.5 (Summary.mean (Summary.merge a b));
  close "b+empty mean" 1.5 (Summary.mean (Summary.merge b a))

let test_quantiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  close "q0" 1.0 (Summary.quantile a 0.0);
  close "q1" 5.0 (Summary.quantile a 1.0);
  close "median" 3.0 (Summary.quantile a 0.5);
  close "q0.25" 2.0 (Summary.quantile a 0.25);
  close "interpolated" 1.4 (Summary.quantile a 0.1);
  close "unsorted" 3.0 (Summary.quantile [| 5.0; 1.0; 3.0; 2.0; 4.0 |] 0.5);
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile_sorted: empty")
    (fun () -> ignore (Summary.quantile [||] 0.5))

let test_rmse_relerr () =
  close "rmse" (sqrt (100.0 /. 6.0))
    (Summary.rmse ~truth:0.0 [| 3.0; -4.0; 5.0; -5.0; 4.0; -3.0 |]);
  close "rel err" 0.1 (Summary.relative_error ~truth:10.0 11.0);
  close "rel err zero truth zero x" 0.0 (Summary.relative_error ~truth:0.0 0.0);
  check_bool "rel err zero truth" true
    (Summary.relative_error ~truth:0.0 1.0 = infinity)

(* ---- Interval ---- *)

let test_interval_normal () =
  let ci = Interval.make ~method_:Interval.Normal ~coverage:0.95 ~estimate:100.0 ~stddev:10.0 in
  close ~eps:1e-2 "lo" (100.0 -. 19.6) ci.Interval.lo;
  close ~eps:1e-2 "hi" (100.0 +. 19.6) ci.Interval.hi;
  check_bool "contains estimate" true (Interval.contains ci 100.0);
  check_bool "contains edge" true (Interval.contains ci 119.0);
  check_bool "excludes far" false (Interval.contains ci 130.0);
  close ~eps:1e-2 "width" 39.2 (Interval.width ci)

let test_interval_chebyshev_wider () =
  let n = Interval.make ~method_:Interval.Normal ~coverage:0.95 ~estimate:0.0 ~stddev:1.0 in
  let c = Interval.make ~method_:Interval.Chebyshev ~coverage:0.95 ~estimate:0.0 ~stddev:1.0 in
  check_bool "chebyshev wider" true (Interval.width c > Interval.width n);
  close ~eps:0.05 "factor ~2.28" 2.28 (Interval.width c /. Interval.width n)

let test_interval_validation () =
  Alcotest.check_raises "negative sd" (Invalid_argument "Interval.make: negative stddev")
    (fun () ->
      ignore
        (Interval.make ~method_:Interval.Normal ~coverage:0.9 ~estimate:0.0
           ~stddev:(-1.0)));
  Alcotest.check_raises "bad coverage"
    (Invalid_argument "Interval.make: coverage not in (0,1)") (fun () ->
      ignore
        (Interval.make ~method_:Interval.Normal ~coverage:1.0 ~estimate:0.0
           ~stddev:1.0))

let test_quantile_bound () =
  close ~eps:1e-4 "median bound" 50.0
    (Interval.quantile_bound ~estimate:50.0 ~stddev:5.0 0.5);
  close ~eps:1e-2 "upper" (50.0 +. (1.6449 *. 5.0))
    (Interval.quantile_bound ~estimate:50.0 ~stddev:5.0 0.95);
  check_bool "monotone" true
    (Interval.quantile_bound ~estimate:0.0 ~stddev:1.0 0.2
    < Interval.quantile_bound ~estimate:0.0 ~stddev:1.0 0.8)

let test_interval_zero_sd () =
  let ci = Interval.make ~method_:Interval.Normal ~coverage:0.95 ~estimate:7.0 ~stddev:0.0 in
  close "degenerate lo" 7.0 ci.Interval.lo;
  close "degenerate hi" 7.0 ci.Interval.hi

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"normal cdf monotone" ~count:300
    QCheck2.Gen.(pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Normal.cdf lo <= Normal.cdf hi +. 1e-12)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"normal quantile monotone" ~count:300
    QCheck2.Gen.(pair (float_range 0.001 0.999) (float_range 0.001 0.999))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Normal.quantile lo <= Normal.quantile hi +. 1e-9)

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"Welford variance matches two-pass" ~count:200
    QCheck2.Gen.(list_size (int_range 2 50) (float_range (-1000.0) 1000.0))
    (fun l ->
      let a = Array.of_list l in
      let s = Summary.of_array a in
      let n = float_of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0.0 a /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
        /. (n -. 1.0)
      in
      Float.abs (Summary.variance s -. var)
      <= 1e-6 *. Float.max 1.0 (Float.abs var))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cdf_monotone; prop_quantile_monotone; prop_welford_matches_naive ]

let () =
  Alcotest.run "gus_stats"
    [ ( "normal",
        [ Alcotest.test_case "erf known values" `Quick test_erf_known;
          Alcotest.test_case "cdf known values" `Quick test_cdf_known;
          Alcotest.test_case "quantile known values" `Quick test_quantile_known;
          Alcotest.test_case "quantile-cdf roundtrip" `Quick test_quantile_cdf_roundtrip;
          Alcotest.test_case "quantile domain" `Quick test_quantile_domain;
          Alcotest.test_case "chebyshev factor" `Quick test_chebyshev;
          Alcotest.test_case "z_95" `Quick test_z95 ] );
      ( "summary",
        [ Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "vs naive" `Quick test_summary_vs_naive;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "rmse/rel.err" `Quick test_rmse_relerr ] );
      ( "interval",
        [ Alcotest.test_case "normal 95%" `Quick test_interval_normal;
          Alcotest.test_case "chebyshev wider" `Quick test_interval_chebyshev_wider;
          Alcotest.test_case "validation" `Quick test_interval_validation;
          Alcotest.test_case "quantile bound" `Quick test_quantile_bound;
          Alcotest.test_case "zero sd" `Quick test_interval_zero_sd ] );
      ("properties", qcheck_tests) ]
