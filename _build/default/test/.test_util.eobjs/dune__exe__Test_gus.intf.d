test/test_gus.mli:
