lib/relational/tuple.ml: Array Format Lineage String Value
