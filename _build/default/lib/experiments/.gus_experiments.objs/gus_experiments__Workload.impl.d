lib/experiments/workload.ml: Buffer List String
