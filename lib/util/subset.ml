type t = int

let max_universe = 26

let check_universe n =
  if n < 0 || n > max_universe then
    invalid_arg
      (Printf.sprintf "Subset: universe size %d not in [0,%d]" n max_universe)

(* OCaml native ints carry 63 bits (62 value bits + sign).  Bit patterns
   with elements 0..61 are always representable; element 62 would collide
   with the sign bit and element 63+ silently wraps in [lsl], so the wide
   (mask-only, no 2^n array) universe is capped explicitly instead of
   overflowing in silence. *)
let max_mask_bits = 62

let check_mask_bits n =
  if n < 0 || n > max_mask_bits then
    invalid_arg
      (Printf.sprintf
         "Subset: universe size %d not in [0,%d] (subsets are int bitmasks; \
          OCaml ints hold %d usable bits)"
         n max_mask_bits max_mask_bits)

let full_wide n =
  check_mask_bits n;
  (* [1 lsl 62] overflows to min_int, but [max_int] is exactly the
     62-one-bits pattern, so special-case the top width. *)
  if n = max_mask_bits then max_int else (1 lsl n) - 1

let empty = 0

let full n =
  check_universe n;
  (1 lsl n) - 1

let singleton i = 1 lsl i
let add s i = s lor (1 lsl i)
let remove s i = s land lnot (1 lsl i)
let mem s i = s land (1 lsl i) <> 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let subset s t = s land t = s
let inter s t = s land t
let union s t = s lor t
let diff s t = s land lnot t

let complement n s =
  check_universe n;
  full n land lnot s

let elements s =
  (* Walk the mask by shifting it down rather than shifting a probe bit up:
     the probe-bit loop would overflow for elements >= 61. *)
  let rec go i s acc =
    if s = 0 then List.rev acc
    else go (i + 1) (s lsr 1) (if s land 1 = 1 then i :: acc else acc)
  in
  go 0 s []

let of_elements = List.fold_left add empty

let count n =
  check_universe n;
  1 lsl n

let iter_all n f =
  let m = count n in
  for s = 0 to m - 1 do
    f s
  done

(* Subsets of a mask in increasing order, allocation-free: (sub - s) land s
   steps through them ascending (the dual of the classic decreasing
   (sub - 1) land s walk), wrapping back to 0 after s itself. *)
let iter_subsets s f =
  f 0;
  let sub = ref ((0 - s) land s) in
  while !sub <> 0 do
    f !sub;
    sub := (!sub - s) land s
  done

let iter_subsets_down s f =
  let sub = ref s in
  let continue = ref true in
  while !continue do
    f !sub;
    if !sub = 0 then continue := false else sub := (!sub - 1) land s
  done

let iter_supersets n s f =
  let comp = complement n s in
  iter_subsets comp (fun extra -> f (union s extra))

let fold_subsets s f acc =
  let acc = ref acc in
  iter_subsets s (fun t -> acc := f !acc t);
  !acc

let sign s t = if (cardinal s + cardinal t) land 1 = 0 then 1.0 else -1.0

let pp ~names ppf s =
  let items = elements s in
  let name i =
    if i < Array.length names then names.(i) else Printf.sprintf "#%d" i
  in
  Format.fprintf ppf "{%s}" (String.concat "," (List.map name items))

let to_string ~names s = Format.asprintf "%a" (pp ~names) s
