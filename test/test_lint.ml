(* Tests for the static SOA-soundness linter (Gus_analysis.Lint):

   1. Unit tests pinning each GUSxxx code to a minimal trigger plan,
      including one plan that fires three distinct codes at once.
   2. A QCheck property over random plan trees (valid and invalid shapes
      mixed) asserting that the linter is total, that Rewrite.analyze
      raises Unsupported exactly when the linter reports an Error, and
      that every diagnostic path resolves back into the plan. *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Lint = Gus_analysis.Lint
module D = Gus_analysis.Diagnostic
module Rewrite = Gus_analysis.Rewrite
module Sampler = Gus_sampling.Sampler
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_string = check Alcotest.string

let card = function
  | "r" -> 100
  | "s" -> 1000
  | "t" -> 50
  | _ -> 100

let b01 = Sampler.Bernoulli 0.1
let b05 = Sampler.Bernoulli 0.5

let join l r =
  Splan.Equi_join
    { left = l; right = r; left_key = Expr.col "k"; right_key = Expr.col "k" }

(* Substring check (no external string library in the test deps). *)
let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let codes_of report =
  List.map (fun d -> D.code_id d.D.code) report.Lint.diagnostics

let has_code id report = List.mem id (codes_of report)

(* ---- the diagnostic registry ---- *)

let test_registry () =
  check_int "18 codes" 18 (List.length D.all_codes);
  let ids = List.map D.code_id D.all_codes in
  check (Alcotest.list Alcotest.string) "stable ids"
    [ "GUS001"; "GUS002"; "GUS003"; "GUS004"; "GUS005"; "GUS006"; "GUS007";
      "GUS008"; "GUS009"; "GUS010"; "GUS011"; "GUS012"; "GUS013"; "GUS014";
      "GUS015"; "GUS016"; "GUS017"; "GUS018" ]
    ids;
  List.iter
    (fun c ->
      check_bool "has title" true (String.length (D.title c) > 0);
      check_bool "has citation" true (String.length (D.citation c) > 0))
    D.all_codes

let test_path_rendering () =
  check_string "root" "$" (D.path_to_string []);
  check_string "nested" "$.0.1" (D.path_to_string [ 0; 1 ]);
  check_bool "preorder" true (D.compare_path [ 0 ] [ 0; 1 ] < 0)

(* ---- one code per minimal trigger ---- *)

let test_clean_plan () =
  let plan =
    join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Sample (b05, Splan.Scan "s"))
  in
  let report = Lint.run ~card plan in
  check_int "no diagnostics" 0 (List.length report.Lint.diagnostics);
  match report.Lint.analysis with
  | None -> Alcotest.fail "clean plan must be analyzable"
  | Some a ->
      let expected =
        Gus.join (Gus.bernoulli ~rel:"r" 0.1) (Gus.bernoulli ~rel:"s" 0.5)
      in
      check_bool "gus matches rewriter" true (Gus.equal_approx (Lazy.force a.Lint.gus) expected)

let test_self_join_gus001 () =
  let report = Lint.run ~card (join (Splan.Scan "r") (Splan.Scan "r")) in
  check_bool "GUS001" true (has_code "GUS001" report);
  check_bool "not analyzable" true (report.Lint.analysis = None)

let test_union_mismatch_gus002 () =
  let plan =
    Splan.Union_samples
      (Splan.Sample (b01, Splan.Scan "r"), Splan.Sample (b01, Splan.Scan "s"))
  in
  check_bool "GUS002" true (has_code "GUS002" (Lint.run ~card plan))

let test_wor_over_derived_gus003 () =
  (* WOR over an input that is itself sampled: N is a random variable. *)
  let plan =
    Splan.Sample (Sampler.Wor 10, Splan.Sample (b01, Splan.Scan "r"))
  in
  check_bool "GUS003" true (has_code "GUS003" (Lint.run ~card plan))

let test_wor_over_fixed_gus018 () =
  (* WOR over a sample-free but cardinality-changing derived input: N is
     fixed yet not statically known, a dedicated error distinct from the
     random-input case. *)
  let plan =
    Splan.Sample
      (Sampler.Wor 10, Splan.Select (Expr.(col "x" > int 0), Splan.Scan "r"))
  in
  let report = Lint.run ~card plan in
  check_bool "GUS018" true (has_code "GUS018" report);
  check_bool "not GUS003" false (has_code "GUS003" report);
  check_bool "error: not analyzable" true (report.Lint.analysis = None)

let test_wor_over_preserving_projection () =
  (* A Project chain keeps rows 1:1 with the base table, so WOR's N
     resolves through the skeleton to card "r" = 100 and a = 10/100. *)
  let plan =
    Splan.Sample
      (Sampler.Wor 10,
       Splan.Project ([ ("x", Expr.col "x") ], Splan.Scan "r"))
  in
  let report = Lint.run ~card plan in
  check_bool "no GUS018" false (has_code "GUS018" report);
  check_bool "no GUS003" false (has_code "GUS003" report);
  match report.Lint.analysis with
  | None -> Alcotest.fail "must be analyzable"
  | Some a ->
      check (Alcotest.float 1e-12) "a = n/N" 0.1 (Lazy.force a.Lint.gus).Gus.a

let test_block_over_derived_gus004 () =
  let block = Sampler.Block { rows_per_block = 10; p = 0.5 } in
  let plan = Splan.Sample (block, join (Splan.Scan "r") (Splan.Scan "s")) in
  check_bool "GUS004" true (has_code "GUS004" (Lint.run ~card plan))

let test_hash_over_derived_gus005 () =
  let hash = Sampler.Hash_bernoulli { seed = 7; p = 0.5 } in
  let plan = Splan.Sample (hash, join (Splan.Scan "r") (Splan.Scan "s")) in
  check_bool "GUS005" true (has_code "GUS005" (Lint.run ~card plan))

let test_wr_gus006 () =
  let report = Lint.run ~card (Splan.Sample (Sampler.Wr 5, Splan.Scan "r")) in
  check_bool "GUS006" true (has_code "GUS006" report)

let test_distinct_gus007 () =
  let plan = Splan.Distinct (Splan.Sample (b01, Splan.Scan "r")) in
  check_bool "GUS007" true (has_code "GUS007" (Lint.run ~card plan));
  (* DISTINCT over a sample-free input is fine. *)
  let ok = Splan.Distinct (Splan.Scan "r") in
  check_int "sample-free distinct clean" 0
    (List.length (Lint.run ~card ok).Lint.diagnostics)

let test_probability_range_gus008 () =
  let too_big = Splan.Sample (Sampler.Bernoulli 1.5, Splan.Scan "r") in
  check_bool "p > 1" true (has_code "GUS008" (Lint.run ~card too_big));
  let n_over_cap = Splan.Sample (Sampler.Wor 200, Splan.Scan "r") in
  check_bool "n > N" true (has_code "GUS008" (Lint.run ~card n_over_cap))

let test_zero_probability_gus009 () =
  let plan = Splan.Sample (Sampler.Bernoulli 0.0, Splan.Scan "r") in
  let report = Lint.run ~card plan in
  check_bool "GUS009" true (has_code "GUS009" report);
  check_bool "error severity" true
    (List.exists (fun d -> D.severity d = D.Error) report.Lint.diagnostics)

let test_small_a_gus010 () =
  let plan = Splan.Sample (Sampler.Bernoulli 1e-5, Splan.Scan "r") in
  let report = Lint.run ~card plan in
  check_bool "GUS010" true (has_code "GUS010" report);
  check_bool "only a warning: still analyzable" true
    (report.Lint.analysis <> None);
  (* The threshold is configurable. *)
  let lax =
    Lint.run ~config:{ Lint.default_config with Lint.small_a = 1e-9 } ~card plan
  in
  check_bool "below-threshold config silences it" false (has_code "GUS010" lax)

(* The threshold comparison is strict, 0 disables the warning entirely,
   and invalid configs are rejected rather than silently accepted. *)
let test_small_a_boundaries () =
  let plan = Splan.Sample (Sampler.Bernoulli 1e-3, Splan.Scan "r") in
  let with_threshold small_a =
    Lint.run ~config:{ Lint.default_config with Lint.small_a } ~card plan
  in
  check_bool "a = threshold: no warning (strict <)" false
    (has_code "GUS010" (with_threshold 1e-3));
  check_bool "a just below threshold: warns" true
    (has_code "GUS010" (with_threshold 1.0000001e-3));
  check_bool "small_a = 0 disables the warning" false
    (has_code "GUS010" (with_threshold 0.0));
  let rejects config =
    match Lint.run ~config ~card plan with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "negative small_a rejected" true
    (rejects { Lint.default_config with Lint.small_a = -1.0 });
  check_bool "negative variance_bound rejected" true
    (rejects { Lint.default_config with Lint.variance_bound = -1.0 });
  check_bool "NaN cost_budget rejected" true
    (rejects { Lint.default_config with Lint.cost_budget = Float.nan })

(* [run] stays total when every base relation is empty: WOR's a = n/N has
   no denominator, selections/joins see cardinality-zero intervals. *)
let test_totality_on_empty_relations () =
  let zero_card _ = 0 in
  let plans =
    [ Splan.Sample (b01, Splan.Scan "r");
      Splan.Sample (Sampler.Wor 10, Splan.Scan "r");
      Splan.Sample (Sampler.Wor 0, Splan.Scan "r");
      join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s");
      Splan.Sample
        (Sampler.Wor 1,
         Splan.Project ([ ("x", Expr.col "x") ], Splan.Scan "r")) ]
  in
  List.iter
    (fun plan ->
      let report = Lint.run ~card:zero_card plan in
      ignore (Lint.summary report);
      ignore (Lint.to_json report))
    plans

let test_redundant_gus011 () =
  let keep_all = Splan.Sample (Sampler.Bernoulli 1.0, Splan.Scan "r") in
  let report = Lint.run ~card keep_all in
  check_bool "GUS011" true (has_code "GUS011" report);
  check_bool "hint only: analyzable" true (report.Lint.analysis <> None);
  let full_wor = Splan.Sample (Sampler.Wor 100, Splan.Scan "r") in
  check_bool "WOR n = N" true (has_code "GUS011" (Lint.run ~card full_wor))

let test_pushdown_gus012 () =
  let pred = Expr.(col "x" > int 3) in
  let above = Splan.Sample (b01, Splan.Select (pred, Splan.Scan "r")) in
  let report = Lint.run ~card above in
  check_bool "GUS012 hint" true (has_code "GUS012" report);
  check_bool "hint only: analyzable" true (report.Lint.analysis <> None);
  let below = Splan.Select (pred, Splan.Sample (b01, Splan.Scan "r")) in
  check_bool "already pushed: no hint" false
    (has_code "GUS012" (Lint.run ~card below));
  (* WOR cannot commute below a selection (it would change n/N), so no
     pushdown hint there. *)
  let wor_above = Splan.Sample (Sampler.Wor 10, Splan.Select (pred, Splan.Scan "r")) in
  check_bool "no hint for WOR" false (has_code "GUS012" (Lint.run ~card wor_above))

let test_analysis_limit_gus013 () =
  (* More base relations than Subset.max_mask_bits: even the symbolic
     engine runs out — subset masks no longer fit an OCaml int. *)
  let n = Gus_util.Subset.max_mask_bits + 1 in
  let plan = ref (Splan.Scan "r0") in
  for i = 1 to n - 1 do
    plan := Splan.Cross (!plan, Splan.Scan (Printf.sprintf "r%d" i))
  done;
  let report = Lint.run ~card (Splan.Sample (b01, !plan)) in
  check_bool "GUS013" true (has_code "GUS013" report);
  (* Just inside the mask limit the symbolic engine analyzes fine, far
     past the dense 2^n wall. *)
  let m = Gus_util.Subset.max_mask_bits in
  let wide = ref (Splan.Scan "r0") in
  for i = 1 to m - 1 do
    wide := Splan.Cross (!wide, Splan.Scan (Printf.sprintf "r%d" i))
  done;
  let ok = Lint.run ~card (Splan.Sample (b01, !wide)) in
  check_bool "62 rels symbolically analyzable" true (ok.Lint.analysis <> None)

let test_enumeration_cost_gus014 () =
  let plan =
    Splan.Cross
      (Splan.Sample (b01, Splan.Scan "r"),
       Splan.Cross (Splan.Sample (b05, Splan.Scan "s"), Splan.Scan "t"))
  in
  let tight =
    Lint.run ~config:{ Lint.default_config with Lint.cost_budget = 10.0 }
      ~card plan
  in
  check_bool "GUS014 under a tight budget" true (has_code "GUS014" tight);
  check_bool "warning only: analyzable" true (tight.Lint.analysis <> None);
  check_bool "default budget is silent here" false
    (has_code "GUS014" (Lint.run ~card plan))

let test_variance_bound_gus015 () =
  let tiny = Splan.Sample (Sampler.Bernoulli 1e-5, Splan.Scan "r") in
  let report = Lint.run ~card tiny in
  (* A single Bernoulli(p) has worst-case Var/E^2 = 1/p - 1. *)
  check_bool "GUS015" true (has_code "GUS015" report);
  check_bool "hint only: analyzable" true (report.Lint.analysis <> None);
  let fine = Splan.Sample (b01, Splan.Scan "r") in
  check_bool "10% sample is silent" false (has_code "GUS015" (Lint.run ~card fine))

let test_zero_coefficients_gus016 () =
  (* s is never sampled, so every coefficient of a subset containing it
     is provably zero and the kernel can skip those passes. *)
  let plan = join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Scan "s") in
  let report = Lint.run ~card plan in
  check_bool "GUS016" true (has_code "GUS016" report);
  (match report.Lint.analysis with
  | None -> Alcotest.fail "must be analyzable"
  | Some a ->
      let c = a.Lint.cost in
      check_int "skip mask = bit of s" 2 c.Gus_analysis.Cost.skip_mask;
      check_int "2 of 3 passes skipped" 2 c.Gus_analysis.Cost.skipped);
  (* Fully sampled: nothing is inert, no hint. *)
  let alive =
    join (Splan.Sample (b01, Splan.Scan "r")) (Splan.Sample (b05, Splan.Scan "s"))
  in
  check_bool "no inert relation: silent" false
    (has_code "GUS016" (Lint.run ~card alive));
  (* Sample-free plans answer exactly; the identity GUS must not fire
     cost noise. *)
  check_int "sample-free plan clean" 0
    (List.length (Lint.run ~card (join (Splan.Scan "r") (Splan.Scan "s"))).Lint.diagnostics)

let test_stacked_samplers_gus017 () =
  let plan =
    Splan.Sample (b01, Splan.Sample (b05, Splan.Scan "r"))
  in
  let report = Lint.run ~card plan in
  check_bool "GUS017" true (has_code "GUS017" report);
  check_bool "hint only: analyzable" true (report.Lint.analysis <> None);
  (* The attached fix merges the pair into one Bernoulli(0.05). *)
  let fixed, applied = Lint.apply_fixes ~card plan in
  check_int "one fix applied" 1 (List.length applied);
  (match fixed with
  | Splan.Sample (Sampler.Bernoulli p, Splan.Scan "r") ->
      check (Alcotest.float 1e-12) "merged a" 0.05 p
  | _ -> Alcotest.fail "expected a single merged Bernoulli over the scan");
  check_bool "fixed plan has no GUS017" false
    (has_code "GUS017" (Lint.run ~card fixed))

(* ---- several codes in one plan, reported all at once ---- *)

let test_multiple_codes_one_plan () =
  let plan =
    Splan.Distinct
      (Splan.Sample (Sampler.Wr 5, Splan.Cross (Splan.Scan "r", Splan.Scan "r")))
  in
  let report = Lint.run ~card plan in
  let distinct_codes = List.sort_uniq compare (codes_of report) in
  check_bool "at least 3 distinct codes" true (List.length distinct_codes >= 3);
  List.iter
    (fun c -> check_bool (c ^ " present") true (has_code c report))
    [ "GUS001"; "GUS006"; "GUS007" ];
  (* Rewrite.Unsupported carries every code in one message. *)
  (match Rewrite.analyze ~card plan with
  | exception Rewrite.Unsupported msg ->
      List.iter
        (fun c ->
          check_bool (c ^ " in message") true
            (contains_sub msg c))
        [ "GUS001"; "GUS006"; "GUS007" ]
  | _ -> Alcotest.fail "analyze must reject");
  (* All paths resolve into the plan. *)
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "path %s resolves" (D.path_to_string d.D.path))
        true
        (Splan.subtree plan d.D.path <> None))
    report.Lint.diagnostics

(* ---- satellite: typed Union_samples lineage error ---- *)

let test_union_lineage_mismatch_exception () =
  let plan = Splan.Union_samples (Splan.Scan "r", Splan.Scan "s") in
  match Splan.lineage_schema plan with
  | _ -> Alcotest.fail "must raise"
  | exception Splan.Union_lineage_mismatch { left; right } ->
      check (Alcotest.list Alcotest.string) "left" [ "r" ] left;
      check (Alcotest.list Alcotest.string) "right" [ "s" ] right

(* ---- report rendering ---- *)

let test_report_rendering () =
  let plan = Splan.Sample (Sampler.Wr 5, Splan.Scan "r") in
  let report = Lint.run ~card plan in
  check_string "summary" "1 error(s), 0 warning(s), 0 hint(s)"
    (Lint.summary report);
  let json = Lint.to_json report in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in json") true (contains_sub json needle))
    [ "\"errors\": 1"; "\"analyzable\": false"; "GUS006" ];
  let annotated = Format.asprintf "%a" Lint.pp_annotated_plan (plan, report) in
  check_bool "marker on offending line" true
    (contains_sub annotated "<-- GUS006")

(* ---- property: linter totality and agreement with the rewriter ---- *)

let sampler_gen =
  QCheck2.Gen.(
    oneof
      [ (float_range (-0.2) 1.2 >|= fun p -> Sampler.Bernoulli p);
        (int_range (-2) 150 >|= fun n -> Sampler.Wor n);
        (int_range 1 20 >|= fun n -> Sampler.Wr n);
        ( pair (int_range 1 20) (float_range 0.0 1.1) >|= fun (b, p) ->
          Sampler.Block { rows_per_block = b; p } );
        ( pair (int_range 0 99) (float_range 0.0 1.1) >|= fun (seed, p) ->
          Sampler.Hash_bernoulli { seed; p } ) ])

let plan_gen =
  QCheck2.Gen.(
    let scan = oneofl [ "r"; "s"; "t" ] >|= fun r -> Splan.Scan r in
    sized
    @@ fix (fun self n ->
           if n <= 0 then scan
           else
             let sub = self (n / 2) in
             oneof
               [ scan;
                 (sub >|= fun q -> Splan.Select (Expr.(col "x" > int 0), q));
                 (map2 (fun s q -> Splan.Sample (s, q)) sampler_gen sub);
                 (sub >|= fun q -> Splan.Distinct q);
                 map2
                   (fun l r ->
                     Splan.Equi_join
                       { left = l; right = r; left_key = Expr.col "k";
                         right_key = Expr.col "k" })
                   sub sub;
                 map2 (fun l r -> Splan.Cross (l, r)) sub sub;
                 map2 (fun l r -> Splan.Union_samples (l, r)) sub sub ]))

let prop_lint_total_and_consistent plan =
  (* The linter never raises and agrees with the rewriter wrapper. *)
  let report = Lint.run ~card plan in
  let errors = Lint.errors report in
  (* Every diagnostic carries a registered code and a resolvable path. *)
  List.iter
    (fun d ->
      assert (List.mem d.D.code D.all_codes);
      assert (Splan.subtree plan d.D.path <> None))
    report.Lint.diagnostics;
  match Rewrite.analyze ~card plan with
  | result ->
      (* Accepted plans have no Error findings and the same GUS. *)
      errors = []
      && report.Lint.analysis <> None
      && Gus.equal_approx (Lazy.force result.Rewrite.gus)
           (match report.Lint.analysis with
           | Some a -> (Lazy.force a.Lint.gus)
           | None -> assert false)
  | exception Rewrite.Unsupported msg ->
      (* Rejected plans produce at least one Error with a stable code that
         appears verbatim in the exception message. *)
      errors <> []
      && report.Lint.analysis = None
      && List.for_all
           (fun d -> contains_sub msg (D.code_id d.D.code))
           errors

let lint_property =
  QCheck2.Test.make ~name:"lint total; Unsupported <-> >=1 Error" ~count:500
    plan_gen prop_lint_total_and_consistent

let () =
  Alcotest.run "gus_analysis.lint"
    [ ( "registry",
        [ Alcotest.test_case "codes and citations" `Quick test_registry;
          Alcotest.test_case "path rendering" `Quick test_path_rendering ] );
      ( "codes",
        [ Alcotest.test_case "clean plan" `Quick test_clean_plan;
          Alcotest.test_case "GUS001 self-join" `Quick test_self_join_gus001;
          Alcotest.test_case "GUS002 union mismatch" `Quick test_union_mismatch_gus002;
          Alcotest.test_case "GUS003 WOR over derived" `Quick test_wor_over_derived_gus003;
          Alcotest.test_case "GUS018 WOR over fixed derived" `Quick test_wor_over_fixed_gus018;
          Alcotest.test_case "WOR over preserving projection" `Quick test_wor_over_preserving_projection;
          Alcotest.test_case "GUS004 block over derived" `Quick test_block_over_derived_gus004;
          Alcotest.test_case "GUS005 hash over derived" `Quick test_hash_over_derived_gus005;
          Alcotest.test_case "GUS006 with replacement" `Quick test_wr_gus006;
          Alcotest.test_case "GUS007 distinct over sample" `Quick test_distinct_gus007;
          Alcotest.test_case "GUS008 probability range" `Quick test_probability_range_gus008;
          Alcotest.test_case "GUS009 zero probability" `Quick test_zero_probability_gus009;
          Alcotest.test_case "GUS010 small a" `Quick test_small_a_gus010;
          Alcotest.test_case "GUS011 redundant sampler" `Quick test_redundant_gus011;
          Alcotest.test_case "GUS012 pushdown hint" `Quick test_pushdown_gus012;
          Alcotest.test_case "GUS013 analysis limit" `Quick test_analysis_limit_gus013;
          Alcotest.test_case "GUS014 enumeration cost" `Quick test_enumeration_cost_gus014;
          Alcotest.test_case "GUS015 variance bound" `Quick test_variance_bound_gus015;
          Alcotest.test_case "GUS016 zero coefficients" `Quick test_zero_coefficients_gus016;
          Alcotest.test_case "GUS017 stacked samplers" `Quick test_stacked_samplers_gus017 ] );
      ( "config",
        [ Alcotest.test_case "small_a boundaries" `Quick test_small_a_boundaries;
          Alcotest.test_case "total on empty relations" `Quick test_totality_on_empty_relations ] );
      ( "reports",
        [ Alcotest.test_case "several codes at once" `Quick test_multiple_codes_one_plan;
          Alcotest.test_case "union lineage exception" `Quick test_union_lineage_mismatch_exception;
          Alcotest.test_case "summary / json / annotations" `Quick test_report_rendering ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest lint_property ] ) ]
