module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Sampler = Gus_sampling.Sampler

type round = {
  index : int;
  rate : float;
  report : Sbox.report;
  interval : Interval.t;
  rel_width : float;
  met : bool;
}

(* Attach a hash-Bernoulli sampler (fixed seed per relation) to every scan. *)
let rec sampled_plan ~seed ~rate = function
  | Splan.Scan name ->
      (* A stable per-relation seed: samples nest as the rate grows. *)
      let rel_seed =
        seed + (Int64.to_int (Gus_util.Hashing.hash_string ~seed name) land 0xfffff)
      in
      Splan.Sample (Sampler.Hash_bernoulli { seed = rel_seed; p = rate }, Splan.Scan name)
  | Splan.Select (p, q) -> Splan.Select (p, sampled_plan ~seed ~rate q)
  | Splan.Project (fields, q) -> Splan.Project (fields, sampled_plan ~seed ~rate q)
  | Splan.Equi_join j ->
      Splan.Equi_join
        { j with
          left = sampled_plan ~seed ~rate j.left;
          right = sampled_plan ~seed ~rate j.right }
  | Splan.Theta_join (p, l, r) ->
      Splan.Theta_join (p, sampled_plan ~seed ~rate l, sampled_plan ~seed ~rate r)
  | Splan.Cross (l, r) ->
      Splan.Cross (sampled_plan ~seed ~rate l, sampled_plan ~seed ~rate r)
  | Splan.Distinct q -> Splan.Distinct (sampled_plan ~seed ~rate q)
  | Splan.Sample (_, q) -> sampled_plan ~seed ~rate q
  | Splan.Union_samples (l, _) -> sampled_plan ~seed ~rate l

let run ?(seed = 1) ?(initial_rate = 0.01) ?(growth = 2.0) ?(max_rounds = 12) db
    ~plan ~f ~target_rel_width =
  if not (target_rel_width > 0.0) then
    invalid_arg "Progressive.run: target must be positive";
  if not (initial_rate > 0.0 && initial_rate <= 1.0) then
    invalid_arg "Progressive.run: initial rate not in (0,1]";
  if not (growth > 1.0) then invalid_arg "Progressive.run: growth must exceed 1";
  if max_rounds < 1 then invalid_arg "Progressive.run: max_rounds < 1";
  let skeleton = Splan.strip_samples plan in
  let rec go k acc =
    let rate = Float.min 1.0 (initial_rate *. Float.pow growth (float_of_int k)) in
    let plan_k =
      if rate >= 1.0 then skeleton else sampled_plan ~seed ~rate skeleton
    in
    let rng = Gus_util.Rng.create seed in
    let gus = (Lazy.force (Rewrite.analyze_db db plan_k).Rewrite.gus) in
    (* Stream the round's tuples straight into the moments accumulator:
       each round touches only its own (growing) sample, never a
       materialized result relation. *)
    let report = Sbox.of_plan ~gus ~f db rng plan_k in
    let interval = Sbox.interval Interval.Normal report in
    let rel_width =
      if report.Sbox.estimate = 0.0 then
        if report.Sbox.stddev = 0.0 then 0.0 else infinity
      else Interval.width interval /. Float.abs report.Sbox.estimate
    in
    let met = rel_width <= target_rel_width in
    let r = { index = k; rate; report; interval; rel_width; met } in
    let acc = r :: acc in
    if met || rate >= 1.0 || k + 1 >= max_rounds then List.rev acc
    else go (k + 1) acc
  in
  go 0 []
