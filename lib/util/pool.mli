(** A small, reusable domain pool (OCaml 5 [Domain], no dependencies).

    [create ~size] keeps [size - 1] worker domains parked on condition
    variables; {!run_chunks} fans a half-open index range out across them
    (the calling domain works too, as lane 0) and returns when every lane
    has finished.  A pool of size 1 spawns no domains and runs everything
    inline, so callers can thread one pool through unconditionally and
    degrade gracefully on single-core hosts, where
    [Domain.recommended_domain_count () = 1]. *)

type t

val create : size:int -> t
(** [create ~size] spawns [max 1 size - 1] worker domains.  Pools are
    cheap to keep around and meant to be reused; workers idle on a
    condition variable between jobs.  An [at_exit] hook shuts the pool
    down so forgotten pools never block process exit. *)

val size : t -> int
(** Number of lanes (workers + the calling domain). *)

val run_chunks : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [run_chunks t ~lo ~hi f] partitions [\[lo, hi)] into at most
    [size t] contiguous chunks and evaluates [f clo chi] on each, in
    parallel.  Blocks until all chunks are done.  If any chunk raises, one
    of the exceptions is re-raised after every lane has finished.  The
    caller must ensure chunk bodies touch disjoint mutable state.
    A pool must not be shared by concurrent [run_chunks] calls. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool cannot be
    used afterwards. *)

val recommended_size : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]. *)

val default : unit -> t
(** A process-wide shared pool of {!recommended_size}, created lazily on
    first use. *)
