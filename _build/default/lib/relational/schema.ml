type column = { name : string; ty : Value.ty }

type t = {
  cols : column array;
  index : (string, int) Hashtbl.t;
}

exception Unknown_column of string

let make cols =
  let cols = Array.of_list cols in
  let index = Hashtbl.create (Array.length cols * 2) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s" c.name);
      Hashtbl.add index c.name i)
    cols;
  { cols; index }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let column_name t i = t.cols.(i).name
let column_ty t i = t.cols.(i).ty

let find_index t name = Hashtbl.find_opt t.index name

let index_of t name =
  match find_index t name with
  | Some i -> i
  | None -> raise (Unknown_column name)

let mem t name = Hashtbl.mem t.index name

let concat a b = make (columns a @ columns b)

let project t names = make (List.map (fun n -> t.cols.(index_of t n)) names)

let check_tuple t values =
  if Array.length values <> arity t then
    invalid_arg
      (Printf.sprintf "Schema.check_tuple: arity %d, expected %d"
         (Array.length values) (arity t));
  Array.iteri
    (fun i v ->
      if not (Value.conforms v t.cols.(i).ty) then
        raise
          (Value.Type_error
             (Printf.sprintf "column %s expects %s, got %s" t.cols.(i).name
                (Value.ty_name t.cols.(i).ty)
                (Value.to_display v))))
    values

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%s:%s" c.name (Value.ty_name c.ty))
          (columns t)))
