(* Re-execute a journal (Gus_obs.Journal NDJSON) against a catalog and
   assert bit-identical estimates.

   The engine's determinism contract — estimates depend only on
   (dataset version, sql, overrides) — makes the journal a reproducible
   trace, not just a log: register events rebuild each dataset from its
   recorded source in journal order (so versions line up), and exec
   events re-run the SQL with the journaled seed/rates/explain/exact
   and compare estimate, stddev and variance bit for bit (the explain
   flag is honored because the profiled path's moment-reduction order
   can differ from the streaming path's in the last stddev bits). *)

module Journal = Gus_obs.Journal
module Runner = Gus_sql.Runner

exception Corrupt of { line : int; message : string }

let corrupt line message = raise (Corrupt { line; message })

type mismatch = {
  mm_line : int;
  mm_sql : string;
  mm_field : string;
  mm_journaled : float;
  mm_replayed : float;
}

type report = {
  rp_registers : int;  (** datasets rebuilt from journaled sources *)
  rp_skipped : int;  (** register events for already-present datasets *)
  rp_executions : int;
  rp_matched : int;
  rp_sheds : int;  (** shed decision events (advisory, skipped) *)
  rp_mismatches : mismatch list;
}

(* Bit-identity up to "nan equals nan": the journal renders non-finite
   values symbolically, so any nan payload distinction is already gone
   at export time. *)
let same_bits a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let num_field ~line j name =
  match Json.member name j with
  | Some (Json.Num v) -> v
  | Some (Json.Str "nan") -> Float.nan
  | Some (Json.Str "inf") -> Float.infinity
  | Some (Json.Str "-inf") -> Float.neg_infinity
  | _ -> corrupt line (Printf.sprintf "missing number field %S" name)

let str_field ~line j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> corrupt line (Printf.sprintf "missing string field %S" name)

let int_field ~line j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some n -> n
  | None -> corrupt line (Printf.sprintf "missing integer field %S" name)

let bool_field ~line j name =
  match Option.bind (Json.member name j) Json.to_bool with
  | Some b -> b
  | None -> corrupt line (Printf.sprintf "missing bool field %S" name)

let rates_field ~line j =
  match Json.member "rates" j with
  | Some (Json.Obj fields) ->
      List.map
        (fun (rel, v) ->
          match Json.to_num v with
          | Some rate -> (rel, rate)
          | None -> corrupt line (Printf.sprintf "rate for %S not a number" rel))
        fields
  | _ -> corrupt line "missing object field \"rates\""

(* What the Engine journaled for this response (same extraction as
   Engine.note_exec, so journal and replay cannot diverge on shape). *)
let response_stats (rs : Runner.response) =
  let estimate, stddev =
    match rs.Runner.rs_result.Runner.cells with
    | c :: _ -> (c.Runner.value, c.Runner.stddev)
    | [] -> (Float.nan, Float.nan)
  in
  let variance =
    match rs.Runner.rs_report with
    | Some r -> r.Gus_estimator.Sbox.variance
    | None -> stddev *. stddev
  in
  (estimate, stddev, variance)

let replay_exec engine handles ~line j acc =
  let dataset = str_field ~line j "dataset" in
  let sql = str_field ~line j "sql" in
  let ov =
    { Prepared.seed = int_field ~line j "seed";
      rates = rates_field ~line j;
      explain = bool_field ~line j "explain";
      exact = bool_field ~line j "exact" }
  in
  let handle =
    match Hashtbl.find_opt handles (dataset, sql) with
    | Some h -> h
    | None ->
        let h, _ = Engine.prepare engine ~dataset sql in
        Hashtbl.add handles (dataset, sql) h;
        h
  in
  let outcome = Engine.execute engine ~handle ov in
  let estimate, stddev, variance = response_stats outcome.Engine.response in
  let mismatches =
    List.filter_map
      (fun (field, journaled, replayed) ->
        if same_bits journaled replayed then None
        else
          Some
            { mm_line = line;
              mm_sql = sql;
              mm_field = field;
              mm_journaled = journaled;
              mm_replayed = replayed })
      [ ("estimate", num_field ~line j "estimate", estimate);
        ("stddev", num_field ~line j "stddev", stddev);
        ("variance", num_field ~line j "variance", variance) ]
  in
  { acc with
    rp_executions = acc.rp_executions + 1;
    rp_matched = (acc.rp_matched + if mismatches = [] then 1 else 0);
    rp_mismatches = acc.rp_mismatches @ mismatches }

let replay_register engine ~line j acc =
  let dataset = str_field ~line j "dataset" in
  let source =
    match Json.member "source" j with
    | Some (Json.Obj _ as s) -> s
    | _ -> corrupt line "missing object field \"source\""
  in
  match Catalog.find (Engine.catalog engine) dataset with
  | Some _ ->
      (* Already present (caller pre-registered it, e.g. an in-memory
         dataset the journal's source cannot rebuild): trust it and let
         the estimate comparison catch any data drift. *)
      { acc with rp_skipped = acc.rp_skipped + 1 }
  | None ->
      (match Option.bind (Json.member "source" source) Json.to_str with
      | Some "memory" ->
          failwith
            (Printf.sprintf
               "journal line %d: dataset %S has an in-memory source; \
                register it on the replay engine first"
               line dataset)
      | _ -> ());
      ignore (Engine.register engine ~name:dataset ~source:(Protocol.source_of_request source));
      { acc with rp_registers = acc.rp_registers + 1 }

let replay_line engine handles ~line raw acc =
  let j =
    match Json.of_string raw with
    | j -> j
    | exception Json.Parse_error msg -> corrupt line msg
  in
  match Option.bind (Json.member "ev" j) Json.to_str with
  | Some "register" -> replay_register engine ~line j acc
  | Some "exec" -> replay_exec engine handles ~line j acc
  | Some "shed" ->
      (* Advisory provenance only: the degraded rates a shed decision
         selected also ride in the following exec event's rates field,
         which is what gets re-executed and compared — so shed events
         are counted and skipped, never replayed. *)
      { acc with rp_sheds = acc.rp_sheds + 1 }
  | Some other -> corrupt line (Printf.sprintf "unknown event kind %S" other)
  | None -> corrupt line "missing string field \"ev\""

let empty_report =
  { rp_registers = 0;
    rp_skipped = 0;
    rp_executions = 0;
    rp_matched = 0;
    rp_sheds = 0;
    rp_mismatches = [] }

let run_lines ?engine lines =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let handles = Hashtbl.create 16 in
  let acc = ref empty_report in
  let line = ref 0 in
  Seq.iter
    (fun raw ->
      incr line;
      if String.trim raw <> "" then
        acc := replay_line engine handles ~line:!line raw !acc)
    lines;
  !acc

let rec lines_of_channel ic () =
  match input_line ic with
  | line -> Seq.Cons (line, lines_of_channel ic)
  | exception End_of_file -> Seq.Nil

let run_channel ?engine ic = run_lines ?engine (lines_of_channel ic)

let run_file ?engine path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      run_channel ?engine ic)

let run_string ?engine s =
  run_lines ?engine (String.split_on_char '\n' s |> List.to_seq)
