(** Versioned binary dataset snapshots of base-relation catalogs.

    Little-endian v1 format: a header followed by per-relation,
    per-column blobs (see the implementation comment for the layout
    table).  {!save} streams a {!Database.t} out; {!load} parses the
    header and wraps every fixed-width column blob with [Unix.map_file]
    — restore cost is O(columns), not O(rows).  Mapped columns are
    copy-on-write and have capacity = length, so appending to a restored
    relation copies the data out rather than writing through the file.

    Snapshots are only byte-portable between hosts of the same
    endianness and 64-bit word size; the header records both and the
    loader rejects mismatches. *)

exception Format_error of string
(** Structurally invalid snapshot: bad magic, endianness or word-size
    mismatch, truncation, out-of-range dictionary codes, duplicate
    names. *)

exception Version_mismatch of { found : int; expected : int }
(** Valid header, but a format version this build does not read. *)

val version : int
(** Current on-disk format version (written by {!save}). *)

val save : path:string -> Database.t -> unit
(** Serialize all relations.  Raises [Invalid_argument] if the database
    holds a non-base relation; row-backed base relations are converted
    to columns on the way out. *)

val load : path:string -> Database.t
(** Parse and map [path].  Raises {!Format_error} or
    {!Version_mismatch}; never returns a partially-loaded database. *)
