(* Per-domain trace buffers.

   Each domain owns a growable event buffer reached through domain-local
   storage, so recording never takes a lock: the only synchronized
   operation is registering a fresh buffer in the global list the first
   time a domain records (a once-per-domain mutex acquisition).  Export
   functions walk the registry under the same mutex; they are meant to be
   called from quiescent points (no pool jobs in flight), which the CLI
   and harness guarantee by exporting only after runs complete. *)

external now_ns : unit -> int = "gus_obs_monotonic_ns" [@@noalloc]

type args = (string * string) list

(* A plain [bool ref] (not Atomic) keeps the disabled check to a single
   load.  OCaml mutable bool reads/writes are atomic at the hardware
   level; the flag only flips at quiescent points so lanes need no
   fence-ordering guarantees beyond eventually observing the store. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type phase = Begin | End | Instant

type event = {
  phase : phase;
  name : string;
  ts_ns : int;
  eargs : args;
}

type buffer = {
  dom : int;
  mutable events : event array;
  mutable len : int;
}

let dummy_event = { phase = Instant; name = ""; ts_ns = 0; eargs = [] }

let registry_mu = Mutex.create ()
let registry : buffer list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int);
          events = Array.make 256 dummy_event;
          len = 0 }
      in
      Mutex.lock registry_mu;
      registry := b :: !registry;
      Mutex.unlock registry_mu;
      b)

let record phase name eargs =
  let b = Domain.DLS.get buffer_key in
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) dummy_event in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- { phase; name; ts_ns = now_ns (); eargs };
  b.len <- b.len + 1

let enter ?(args = []) name = if !enabled_flag then record Begin name args
let leave ?(args = []) name = if !enabled_flag then record End name args
let instant ?(args = []) name = if !enabled_flag then record Instant name args

let span ?args name f =
  if !enabled_flag then begin
    record Begin name [];
    match f () with
    | v ->
        let a = match args with None -> [] | Some g -> g () in
        record End name a;
        v
    | exception e ->
        record End name [ ("exn", Printexc.to_string e) ];
        raise e
  end
  else f ()

let buffers_snapshot () =
  Mutex.lock registry_mu;
  let bs = !registry in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare a.dom b.dom) bs

let clear () =
  List.iter
    (fun b ->
      (* Shrink back so long-lived processes don't pin peak capacity. *)
      b.events <- Array.make 256 dummy_event;
      b.len <- 0)
    (buffers_snapshot ())

let event_count () =
  List.fold_left (fun acc b -> acc + b.len) 0 (buffers_snapshot ())

(* ------------------------------------------------------------------ *)
(* Tree reconstruction                                                 *)

type span_tree = {
  sname : string;
  start_ns : int;
  dur_ns : int;
  sargs : args;
  children : span_tree list;
}

type open_span = {
  oname : string;
  ostart : int;
  mutable oargs : args;
  mutable rev_children : span_tree list;
}

let tree_of_buffer b =
  (* Replay the event stream against an explicit stack.  Unbalanced
     [enter]s (e.g. tracing flipped off mid-span) close at the last
     event seen; stray [leave]s are ignored. *)
  let last_ts = ref 0 in
  let stack : open_span list ref = ref [] in
  let roots : span_tree list ref = ref [] in
  let close o end_ns =
    let node =
      { sname = o.oname;
        start_ns = o.ostart;
        dur_ns = end_ns - o.ostart;
        sargs = o.oargs;
        children = List.rev o.rev_children }
    in
    match !stack with
    | parent :: _ -> parent.rev_children <- node :: parent.rev_children
    | [] -> roots := node :: !roots
  in
  for i = 0 to b.len - 1 do
    let e = b.events.(i) in
    last_ts := e.ts_ns;
    match e.phase with
    | Begin ->
        stack :=
          { oname = e.name; ostart = e.ts_ns; oargs = e.eargs;
            rev_children = [] }
          :: !stack
    | End -> (
        match !stack with
        | o :: rest ->
            stack := rest;
            o.oargs <- o.oargs @ e.eargs;
            close o e.ts_ns
        | [] -> ())
    | Instant ->
        let node =
          { sname = e.name; start_ns = e.ts_ns; dur_ns = 0;
            sargs = e.eargs; children = [] }
        in
        (match !stack with
        | parent :: _ -> parent.rev_children <- node :: parent.rev_children
        | [] -> roots := node :: !roots)
  done;
  let rec drain () =
    match !stack with
    | o :: rest ->
        stack := rest;
        close o !last_ts;
        drain ()
    | [] -> ()
  in
  drain ();
  List.rev !roots

let trees () =
  buffers_snapshot ()
  |> List.filter_map (fun b ->
         if b.len = 0 then None else Some (b.dom, tree_of_buffer b))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let export_json () =
  let bs = buffers_snapshot () in
  let t0 =
    List.fold_left
      (fun acc b -> if b.len > 0 then min acc b.events.(0).ts_ns else acc)
      max_int bs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun b ->
      for i = 0 to b.len - 1 do
        let e = b.events.(i) in
        if !first then first := false else Buffer.add_char buf ',';
        let ph =
          match e.phase with Begin -> "B" | End -> "E" | Instant -> "i"
        in
        (* Microsecond float timestamps relative to the first event keep
           the numbers small enough for viewers that parse ts as double. *)
        let ts_us = float_of_int (e.ts_ns - t0) /. 1e3 in
        Buffer.add_string buf
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
             (json_escape e.name) ph ts_us b.dom);
        if e.phase = Instant then Buffer.add_string buf ",\"s\":\"t\"";
        (match e.eargs with
        | [] -> ()
        | args ->
            Buffer.add_string buf ",\"args\":{";
            List.iteri
              (fun i (k, v) ->
                if i > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf
                  (Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                     (json_escape v)))
              args;
            Buffer.add_char buf '}');
        Buffer.add_char buf '}'
      done)
    bs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let pp_dur ppf ns =
  if ns >= 1_000_000_000 then
    Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then
    Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

let pp_tree ppf () =
  let rec pp_node depth node =
    Format.fprintf ppf "%s%s  [%a]" (String.make (2 * depth) ' ') node.sname
      pp_dur node.dur_ns;
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%s" k v)
      node.sargs;
    Format.fprintf ppf "@\n";
    List.iter (pp_node (depth + 1)) node.children
  in
  List.iter
    (fun (dom, forest) ->
      Format.fprintf ppf "domain %d:@\n" dom;
      List.iter (pp_node 1) forest)
    (trees ())
