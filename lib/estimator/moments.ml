module Subset = Gus_util.Subset
module Inttbl = Gus_util.Inttbl
module Pool = Gus_util.Pool
module Metrics = Gus_obs.Metrics
open Gus_relational

(* Observability instruments.  Pass timings are per-mask (at most 2^n per
   kernel run), tuple counts are O(1) arithmetic or one flag-checked call
   per [Acc.add] — nothing inside the per-tuple probe loops. *)
let m_pass_us = Metrics.histogram "moments.pass_us"
let m_batch_pairs = Metrics.counter "moments.batch.pairs"
let m_acc_tuples = Metrics.counter "moments.acc.tuples"
let m_materialized = Metrics.counter "moments.pairs.materialized"

module Key = struct
  type t = int array

  (* Monomorphic: polymorphic compare on int arrays walks the generic
     structural-equality interpreter per element. *)
  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i =
      i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash (l : t) =
    let h = ref (Gus_util.Hashing.mix64 23L) in
    Array.iter (fun id -> h := Gus_util.Hashing.combine !h (Int64.of_int id)) l;
    Int64.to_int !h land max_int
end

module Tbl = Hashtbl.Make (Key)

let check_lengths ~what ~width ~lineage_of pairs =
  Array.iter
    (fun p ->
      if Array.length (lineage_of p) <> width then
        invalid_arg (Printf.sprintf "Moments.%s: lineage length mismatch" what))
    pairs

(* A view embeds the kernel's [n_rels] subset positions into wider lineage
   arrays: position [i] of the kernel universe reads lineage column
   [view.(i)].  This is what lets a 20-relation plan with 3 live relations
   run 2^3 moment passes over its native 20-column lineages.  The identity
   view is [None].  [width] is the expected lineage length. *)
let check_view ~what ~n_rels ~width view =
  if n_rels > Subset.max_universe then
    invalid_arg (Printf.sprintf "Moments.%s: too many relations" what);
  match view with
  | None ->
      if width <> n_rels then
        invalid_arg
          (Printf.sprintf "Moments.%s: lineage_width %d without a view" what
             width)
  | Some v ->
      if Array.length v <> n_rels then
        invalid_arg
          (Printf.sprintf "Moments.%s: view length %d <> n_rels %d" what
             (Array.length v) n_rels);
      Array.iteri
        (fun i p ->
          if p < 0 || p >= width then
            invalid_arg
              (Printf.sprintf
                 "Moments.%s: view position %d outside lineage width %d" what p
                 width);
          if i > 0 && v.(i - 1) >= p then
            invalid_arg
              (Printf.sprintf "Moments.%s: view not strictly ascending" what))
        v

(* Remap the filled kernel positions through the view, in place. *)
let[@inline] apply_view view (pos : int array) npos =
  match view with
  | None -> ()
  | Some (v : int array) ->
      for k = 0 to npos - 1 do
        Array.unsafe_set pos k (Array.unsafe_get v (Array.unsafe_get pos k))
      done

(* ------------------------------------------------------------------ *)
(* Naive reference implementation (the original seed code): one fresh
   restricted-lineage key array per tuple per subset, one polymorphic-ish
   hashtable per subset.  Retained as the oracle the optimized kernel is
   property-tested against, and as the "before" side of the
   BENCH_moments.json trajectory. *)

let of_pairs_naive ~n_rels pairs =
  check_view ~what:"of_pairs" ~n_rels ~width:n_rels None;
  check_lengths ~what:"of_pairs" ~width:n_rels ~lineage_of:fst pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let grand = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs in
  y.(Subset.empty) <- grand *. grand;
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some sum -> Tbl.replace groups key (sum +. f)
        | None -> Tbl.add groups key f)
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ sum -> acc := !acc +. (sum *. sum)) groups;
    y.(s) <- !acc
  done;
  y

let bilinear_of_pairs_naive ~n_rels pairs =
  check_view ~what:"bilinear_of_pairs" ~n_rels ~width:n_rels None;
  check_lengths ~what:"bilinear_of_pairs" ~width:n_rels
    ~lineage_of:(fun (l, _, _) -> l)
    pairs;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let grand_f = Array.fold_left (fun acc (_, f, _) -> acc +. f) 0.0 pairs in
  let grand_g = Array.fold_left (fun acc (_, _, g) -> acc +. g) 0.0 pairs in
  y.(Subset.empty) <- grand_f *. grand_g;
  for s = 1 to nmasks - 1 do
    let positions = Subset.elements s in
    let groups = Tbl.create (max 64 (Array.length pairs / 4)) in
    Array.iter
      (fun (l, f, g) ->
        let key = Lineage.restrict l ~positions in
        match Tbl.find_opt groups key with
        | Some (sf, sg) -> Tbl.replace groups key (sf +. f, sg +. g)
        | None -> Tbl.add groups key (f, g))
      pairs;
    let acc = ref 0.0 in
    Tbl.iter (fun _ (sf, sg) -> acc := !acc +. (sf *. sg)) groups;
    y.(s) <- !acc
  done;
  y

(* ------------------------------------------------------------------ *)
(* Optimized kernel.

   Each subset pass is a group-by on the lineage positions in the mask.
   Instead of materializing a restricted key array per tuple, we hash the
   masked positions of the original lineage in place and resolve collisions
   by comparing lineages under the mask, using the open-addressing
   {!Gus_util.Inttbl} keyed by tuple index.  All scratch (table, payload
   sums, position buffer) is allocated once per pass and reused across
   subsets; the per-tuple inner loop allocates nothing.

   Subset passes are independent — they only write the disjoint y.(s)
   cells — so above {!default_par_threshold} tuples they fan out across a
   domain pool, each lane carrying its own scratch. *)

let default_par_threshold = 4096

(* SplitMix64-flavoured finalizer on native ints; constants truncated to
   62 bits.  Only collision *rate* depends on this — correctness rests on
   the masked equality check. *)
let[@inline] mix h k =
  let h = (h lxor k) * 0x3F58476D1CE4E5B9 in
  let h = (h lxor (h lsr 29)) * 0x14D049BB133111EB in
  h lxor (h lsr 32)

let[@inline] masked_hash (l : int array) (pos : int array) npos =
  let h = ref 0x9E3779B97F4A7C1 in
  for k = 0 to npos - 1 do
    h := mix !h (Array.unsafe_get l (Array.unsafe_get pos k))
  done;
  !h land max_int

let[@inline] masked_equal (la : int array) (lb : int array) (pos : int array)
    npos =
  let rec go k =
    k >= npos
    ||
    let p = Array.unsafe_get pos k in
    Array.unsafe_get la p = Array.unsafe_get lb p && go (k + 1)
  in
  go 0

(* Write the element indices of mask [s] into [pos]; returns how many. *)
let fill_positions (pos : int array) s =
  let n = ref 0 in
  let m = ref s and p = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then begin
      pos.(!n) <- !p;
      incr n
    end;
    incr p;
    m := !m lsr 1
  done;
  !n

(* Run [body] over subset masks [1, nmasks): sequentially, or fanned out
   over [pool] when the input is large enough to amortize the domains.
   [body lo hi] must allocate its own scratch (one set per lane). *)
let run_passes ?pool ~par_threshold ~n_pairs ~nmasks body =
  let lanes =
    match pool with Some p -> Pool.size p | None -> Pool.recommended_size ()
  in
  if n_pairs < par_threshold || lanes <= 1 || nmasks - 1 <= 1 then
    body 1 nmasks
  else
    let p = match pool with Some p -> p | None -> Pool.default () in
    Pool.run_chunks p ~lo:1 ~hi:nmasks body

let check_skip_mask ~what ~n_rels skip_mask =
  if skip_mask land lnot (Subset.full n_rels) <> 0 then
    invalid_arg
      (Printf.sprintf "Moments.%s: skip_mask has bits outside the universe"
         what)

let of_pairs ?pool ?(par_threshold = default_par_threshold) ?(skip_mask = 0)
    ?view ?lineage_width ~n_rels pairs =
  let width = Option.value lineage_width ~default:n_rels in
  check_view ~what:"of_pairs" ~n_rels ~width view;
  check_lengths ~what:"of_pairs" ~width ~lineage_of:fst pairs;
  check_skip_mask ~what:"of_pairs" ~n_rels skip_mask;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let m = Array.length pairs in
  let grand = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs in
  y.(Subset.empty) <- grand *. grand;
  if Metrics.enabled () then Metrics.add m_batch_pairs m;
  if nmasks > 1 && m > 0 then
    run_passes ?pool ~par_threshold ~n_pairs:m ~nmasks (fun lo hi ->
        let obs = Metrics.enabled () in
        let tbl = Inttbl.create ~hint:m in
        let sums = Array.make (Inttbl.capacity tbl) 0.0 in
        let pos = Array.make n_rels 0 in
        let npos = ref 0 in
        let equal i j =
          let li, _ = Array.unsafe_get pairs i in
          let lj, _ = Array.unsafe_get pairs j in
          masked_equal li lj pos !npos
        in
        for s = lo to hi - 1 do
          if s land skip_mask = 0 then begin
          let t0 = if obs then Gus_obs.Trace.now_ns () else 0 in
          npos := fill_positions pos s;
          apply_view view pos !npos;
          Inttbl.reset tbl ~hint:m;
          for i = 0 to m - 1 do
            let l, f = Array.unsafe_get pairs i in
            let slot =
              Inttbl.find_or_add tbl ~hash:(masked_hash l pos !npos) ~equal
                ~repr:i
            in
            if Inttbl.added tbl then Array.unsafe_set sums slot f
            else
              Array.unsafe_set sums slot (Array.unsafe_get sums slot +. f)
          done;
          let acc = ref 0.0 in
          Inttbl.iter tbl (fun slot _ ->
              let v = Array.unsafe_get sums slot in
              acc := !acc +. (v *. v));
          y.(s) <- !acc;
          if obs then
            Metrics.observe m_pass_us
              (float_of_int (Gus_obs.Trace.now_ns () - t0) /. 1e3)
          end
        done);
  y

let bilinear_of_pairs ?pool ?(par_threshold = default_par_threshold)
    ?(skip_mask = 0) ?view ?lineage_width ~n_rels pairs =
  let width = Option.value lineage_width ~default:n_rels in
  check_view ~what:"bilinear_of_pairs" ~n_rels ~width view;
  check_lengths ~what:"bilinear_of_pairs" ~width
    ~lineage_of:(fun (l, _, _) -> l)
    pairs;
  check_skip_mask ~what:"bilinear_of_pairs" ~n_rels skip_mask;
  let nmasks = Subset.count n_rels in
  let y = Array.make nmasks 0.0 in
  let m = Array.length pairs in
  let grand_f = Array.fold_left (fun acc (_, f, _) -> acc +. f) 0.0 pairs in
  let grand_g = Array.fold_left (fun acc (_, _, g) -> acc +. g) 0.0 pairs in
  y.(Subset.empty) <- grand_f *. grand_g;
  if Metrics.enabled () then Metrics.add m_batch_pairs m;
  if nmasks > 1 && m > 0 then
    run_passes ?pool ~par_threshold ~n_pairs:m ~nmasks (fun lo hi ->
        let obs = Metrics.enabled () in
        let tbl = Inttbl.create ~hint:m in
        let sums_f = Array.make (Inttbl.capacity tbl) 0.0 in
        let sums_g = Array.make (Inttbl.capacity tbl) 0.0 in
        let pos = Array.make n_rels 0 in
        let npos = ref 0 in
        let equal i j =
          let li, _, _ = Array.unsafe_get pairs i in
          let lj, _, _ = Array.unsafe_get pairs j in
          masked_equal li lj pos !npos
        in
        for s = lo to hi - 1 do
          if s land skip_mask = 0 then begin
          let t0 = if obs then Gus_obs.Trace.now_ns () else 0 in
          npos := fill_positions pos s;
          apply_view view pos !npos;
          Inttbl.reset tbl ~hint:m;
          for i = 0 to m - 1 do
            let l, f, g = Array.unsafe_get pairs i in
            let slot =
              Inttbl.find_or_add tbl ~hash:(masked_hash l pos !npos) ~equal
                ~repr:i
            in
            if Inttbl.added tbl then begin
              Array.unsafe_set sums_f slot f;
              Array.unsafe_set sums_g slot g
            end
            else begin
              Array.unsafe_set sums_f slot (Array.unsafe_get sums_f slot +. f);
              Array.unsafe_set sums_g slot (Array.unsafe_get sums_g slot +. g)
            end
          done;
          let acc = ref 0.0 in
          Inttbl.iter tbl (fun slot _ ->
              acc :=
                !acc
                +. (Array.unsafe_get sums_f slot *. Array.unsafe_get sums_g slot));
          y.(s) <- !acc;
          if obs then
            Metrics.observe m_pass_us
              (float_of_int (Gus_obs.Trace.now_ns () - t0) /. 1e3)
          end
        done);
  y

(* ------------------------------------------------------------------ *)
(* Streaming accumulator.

   [Acc.t] is the mergeable partial state of {!of_pairs}: one group table
   per non-empty subset mask, keyed on the lineage restricted to the mask,
   holding each group's running Σf.  Tuples are folded in one at a time
   ({!Acc.add}), so estimation-only pipelines never materialize a
   [(lineage, f)] pairs array; independent partial accumulators (per
   stream chunk, per pool lane) combine with {!Acc.merge} because the
   group tables are disjoint-key mergeable: groups with equal restricted
   lineage add their sums, all others union.

   Each mask's table is the same Inttbl-backed open-addressing scratch as
   the batch kernel, except the representative is a dense *group index*
   into a flat restricted-key store (the batch kernel can point at the
   pairs array; a stream has nothing to point back into).  Probing hashes
   the incoming lineage under the mask in place — a restricted key array
   is copied out only when a new group is born, so memory is bounded by
   the number of distinct groups, not the number of tuples, and the
   steady-state [add] allocates nothing. *)

module Acc = struct
  type group = {
    pos : int array;  (* element positions of this mask *)
    npos : int;
    tbl : Inttbl.t;
    mutable keys : int array;  (* flat store: [npos] ints per group *)
    mutable sums : float array;  (* per-group running Σf *)
    mutable ngroups : int;
    (* Probe cursors: [equal_lineage]/[equal_key] are allocated once per
       group table and read whichever cursor the caller set, so the hot
       path passes no fresh closures to [find_or_add]. *)
    mutable cur_lineage : int array;
    mutable cur_key : int array;
    mutable cur_base : int;
    equal_lineage : int -> int -> bool;
    equal_key : int -> int -> bool;
  }

  type t = {
    n_rels : int;
    width : int;  (* expected lineage length; = n_rels without a view *)
    view : int array option;
    nmasks : int;
    skip_mask : int;  (* masks s with s ∧ skip_mask ≠ 0 are never grouped *)
    groups : group array;  (* groups.(s - 1) handles mask s *)
    mutable count : int;
    mutable total : float;
  }

  let never_equal _ _ = false

  let make_group ~view ~hint s =
    let npos = Subset.cardinal s in
    let pos = Array.make (max 1 npos) 0 in
    let filled = fill_positions pos s in
    apply_view view pos filled;
    let cap = max 16 hint in
    let rec g =
      { pos;
        npos;
        tbl = Inttbl.create ~hint;
        keys = Array.make (cap * npos) 0;
        sums = Array.make cap 0.0;
        ngroups = 0;
        cur_lineage = [||];
        cur_key = [||];
        cur_base = 0;
        equal_lineage =
          (fun stored _ ->
            let base = stored * g.npos in
            let rec go k =
              k >= g.npos
              || Array.unsafe_get g.keys (base + k)
                 = Array.unsafe_get g.cur_lineage (Array.unsafe_get g.pos k)
                 && go (k + 1)
            in
            go 0);
        equal_key =
          (fun stored _ ->
            let base = stored * g.npos in
            let rec go k =
              k >= g.npos
              || Array.unsafe_get g.keys (base + k)
                 = Array.unsafe_get g.cur_key (g.cur_base + k)
                 && go (k + 1)
            in
            go 0) }
    in
    g

  let create ?(hint = 64) ?(skip_mask = 0) ?view ?lineage_width ~n_rels () =
    let width = Option.value lineage_width ~default:n_rels in
    check_view ~what:"Acc.create" ~n_rels ~width view;
    check_skip_mask ~what:"Acc.create" ~n_rels skip_mask;
    let nmasks = Subset.count n_rels in
    { n_rels;
      width;
      view;
      nmasks;
      skip_mask;
      groups =
        Array.init (nmasks - 1) (fun i ->
            (* Skipped masks keep a minimal placeholder group that is
               never probed. *)
            let hint = if (i + 1) land skip_mask = 0 then hint else 1 in
            make_group ~view ~hint (i + 1));
      count = 0;
      total = 0.0 }

  let count t = t.count
  let total t = t.total
  let n_rels t = t.n_rels
  let skip_mask t = t.skip_mask

  (* Hash of stored group [r] — the same fold as {!masked_hash} over the
     same values in the same order, so rehashing preserves probe homes. *)
  let key_hash g r =
    let base = r * g.npos in
    let h = ref 0x9E3779B97F4A7C1 in
    for k = 0 to g.npos - 1 do
      h := mix !h (Array.unsafe_get g.keys (base + k))
    done;
    !h land max_int

  let rehash g =
    Inttbl.reset g.tbl ~hint:(max 16 (2 * g.ngroups));
    for r = 0 to g.ngroups - 1 do
      ignore (Inttbl.find_or_add g.tbl ~hash:(key_hash g r) ~equal:never_equal ~repr:r)
    done

  let[@inline] maybe_grow g =
    if 2 * (Inttbl.size g.tbl + 1) > Inttbl.capacity g.tbl then rehash g

  let ensure_group_room g =
    if g.ngroups = Array.length g.sums then begin
      let cap = 2 * g.ngroups in
      let keys = Array.make (cap * g.npos) 0 in
      Array.blit g.keys 0 keys 0 (g.ngroups * g.npos);
      g.keys <- keys;
      let sums = Array.make cap 0.0 in
      Array.blit g.sums 0 sums 0 g.ngroups;
      g.sums <- sums
    end

  let insert_group g f copy_key =
    ensure_group_room g;
    copy_key (g.ngroups * g.npos);
    g.sums.(g.ngroups) <- f;
    g.ngroups <- g.ngroups + 1

  let add t lineage f =
    if Array.length lineage <> t.width then
      invalid_arg "Moments.Acc.add: lineage length mismatch";
    Metrics.incr m_acc_tuples;
    t.count <- t.count + 1;
    t.total <- t.total +. f;
    for s = 1 to t.nmasks - 1 do
      if s land t.skip_mask = 0 then begin
      let g = t.groups.(s - 1) in
      maybe_grow g;
      g.cur_lineage <- lineage;
      let h = masked_hash lineage g.pos g.npos in
      let slot =
        Inttbl.find_or_add g.tbl ~hash:h ~equal:g.equal_lineage ~repr:g.ngroups
      in
      if Inttbl.added g.tbl then
        insert_group g f (fun base ->
            for k = 0 to g.npos - 1 do
              g.keys.(base + k) <- lineage.(g.pos.(k))
            done)
      else begin
        let r = Inttbl.repr_at g.tbl slot in
        g.sums.(r) <- g.sums.(r) +. f
      end
      end
    done

  let add_pairs t pairs = Array.iter (fun (l, f) -> add t l f) pairs

  let merge a b =
    if a.n_rels <> b.n_rels then
      invalid_arg "Moments.Acc.merge: relation count mismatch";
    if a.view <> b.view then
      invalid_arg "Moments.Acc.merge: view mismatch";
    if a.skip_mask <> b.skip_mask then
      invalid_arg "Moments.Acc.merge: skip-mask mismatch";
    a.count <- a.count + b.count;
    a.total <- a.total +. b.total;
    for s = 1 to a.nmasks - 1 do
      if s land a.skip_mask = 0 then begin
      let ga = a.groups.(s - 1) and gb = b.groups.(s - 1) in
      for r = 0 to gb.ngroups - 1 do
        let base = r * gb.npos in
        maybe_grow ga;
        ga.cur_key <- gb.keys;
        ga.cur_base <- base;
        let h = key_hash gb r in
        let slot =
          Inttbl.find_or_add ga.tbl ~hash:h ~equal:ga.equal_key ~repr:ga.ngroups
        in
        if Inttbl.added ga.tbl then
          insert_group ga gb.sums.(r) (fun dst ->
              Array.blit gb.keys base ga.keys dst ga.npos)
        else begin
          let ra = Inttbl.repr_at ga.tbl slot in
          ga.sums.(ra) <- ga.sums.(ra) +. gb.sums.(r)
        end
      done
      end
    done

  let finalize ?pool t =
    let y = Array.make t.nmasks 0.0 in
    y.(Subset.empty) <- t.total *. t.total;
    if t.nmasks > 1 then begin
      let body lo hi =
        for s = lo to hi - 1 do
          if s land t.skip_mask = 0 then begin
            let g = t.groups.(s - 1) in
            let acc = ref 0.0 in
            for r = 0 to g.ngroups - 1 do
              let v = Array.unsafe_get g.sums r in
              acc := !acc +. (v *. v)
            done;
            y.(s) <- !acc
          end
        done
      in
      match pool with
      | Some p when Pool.size p > 1 && t.nmasks > 2 ->
          Pool.run_chunks p ~lo:1 ~hi:t.nmasks body
      | _ -> body 1 t.nmasks
    end;
    y
end

let bilinear_of_relation ?pool ~f ~g rel =
  let open Gus_relational in
  let ef = Expr.bind_float rel.Relation.schema f in
  let eg = Expr.bind_float rel.Relation.schema g in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0, 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, ef tup, eg tup);
      incr i)
    rel;
  if Metrics.enabled () then
    Metrics.add m_materialized (Relation.cardinality rel);
  bilinear_of_pairs ?pool
    ~n_rels:(Array.length rel.Relation.lineage_schema)
    out

let pairs_of_relation ~f rel =
  let eval = Expr.bind_float rel.Relation.schema f in
  let out = Array.make (Relation.cardinality rel) ([||], 0.0) in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      out.(!i) <- (tup.Tuple.lineage, eval tup);
      incr i)
    rel;
  if Metrics.enabled () then
    Metrics.add m_materialized (Relation.cardinality rel);
  out

let of_relation ?pool ~f rel =
  of_pairs ?pool
    ~n_rels:(Array.length rel.Relation.lineage_schema)
    (pairs_of_relation ~f rel)

let total pairs = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 pairs
