lib/util/rng.mli:
