module Subset = Gus_util.Subset
module Metrics = Gus_obs.Metrics
module Sampler = Gus_sampling.Sampler
module Gus = Gus_core.Gus
module Symalg = Gus_core.Symalg
module Splan = Gus_core.Splan
module D = Diagnostic

type config = {
  small_a : float;
  variance_bound : float;
  cost_budget : float;
}

let default_config =
  { small_a = 1e-3; variance_bound = 1e4; cost_budget = 1e8 }

type coeff_engine = [ `Symbolic | `Dense ]

type analysis = {
  skeleton : Splan.t;
  sym : Symalg.t;
  gus : Gus.t Lazy.t;
  steps : (string * Symalg.t) list;
  facts : Dataflow.table;
  cost : Cost.report;
  sampler_gus : (D.path * Symalg.t) list;
}

type report = {
  diagnostics : D.t list;
  analysis : analysis option;
}

let m_lint_runs = Metrics.counter "analysis.lint.runs"

let with_severity sev r =
  List.filter (fun d -> D.severity d = sev) r.diagnostics

let errors = with_severity D.Error
let warnings = with_severity D.Warning
let hints = with_severity D.Hint

(* ---- rendering plan operators ---- *)

let node_label = Splan.node_label

(* ---- GUS coherence (usable on any hand-built GUS, not only plans) ---- *)

let check_gus ?(path = []) ?(node = "GUS") g =
  let out = ref [] in
  let emit code message = out := D.make ~code ~path ~node message :: !out in
  let a = g.Gus.a in
  if a = 0.0 then
    emit D.Zero_inclusion_probability
      "nothing is ever sampled (a = 0): the 1/a scale-up of Theorem 1 is \
       undefined"
  else if not (a > 0.0 && a <= 1.0) then
    emit D.Probability_out_of_range
      (Printf.sprintf "first-order inclusion probability a = %g is outside \
                       (0,1]" a);
  Array.iteri
    (fun s bs ->
      if bs > a +. 1e-9 then
        emit D.Probability_out_of_range
          (Printf.sprintf
             "b%s = %g exceeds its marginal a = %g: P[t,t' \xe2\x88\x88 S] \
              can never exceed P[t \xe2\x88\x88 S]"
             (Gus.subset_name g s) bs a))
    g.Gus.b;
  List.rev !out

(* Symbolic twin of {!check_gus}: the [a] checks are shared, and the
   per-entry bound is checked without materializing 2^n entries.  A
   nonneg-monotone SoP provably satisfies b_T ≤ b_full = a everywhere, so
   the scan is skipped wholesale (the dense scan over such a design is
   silent too — products of probabilities only ever shrink); otherwise
   only the live universe is enumerated, since dead-mask entries are
   bit-equal to their live projections. *)
let check_sym ?(path = []) ?(node = "GUS") sym =
  let out = ref [] in
  let emit code message = out := D.make ~code ~path ~node message :: !out in
  let a = sym.Symalg.a in
  if a = 0.0 then
    emit D.Zero_inclusion_probability
      "nothing is ever sampled (a = 0): the 1/a scale-up of Theorem 1 is \
       undefined"
  else if not (a > 0.0 && a <= 1.0) then
    emit D.Probability_out_of_range
      (Printf.sprintf "first-order inclusion probability a = %g is outside \
                       (0,1]" a);
  let check_entry s bs =
    if bs > a +. 1e-9 then
      emit D.Probability_out_of_range
        (Printf.sprintf
           "b%s = %g exceeds its marginal a = %g: P[t,t' \xe2\x88\x88 S] \
            can never exceed P[t \xe2\x88\x88 S]"
           (Symalg.subset_name sym s) bs a)
  in
  (match sym.Symalg.repr with
  | Symalg.Dense g -> Array.iteri check_entry g.Gus.b
  | Symalg.Sop _ ->
      if not (Symalg.nonneg_monotone sym) then begin
        let live = Symalg.live_mask sym in
        if Subset.cardinal live <= 20 then
          Subset.iter_subsets live (fun s ->
              check_entry s (Symalg.b_get sym s))
      end);
  List.rev !out

(* ---- sampler translation with diagnostics ---- *)

(* What a sampler sits on, as far as WOR/block translatability goes. *)
type sampler_input =
  | Over_scan  (** a bare [Scan] *)
  | Over_preserving
      (** a cardinality-preserving [Project] chain over one [Scan]:
          rows are 1:1 with base rows, so [N] resolves through the
          skeleton to the base cardinality *)
  | Over_fixed
      (** sample-free derived input: [N] is deterministic but not
          statically known (GUS018) *)
  | Over_random
      (** the input itself is sampled: [N] is a random variable
          (GUS003) *)

(* Mirrors the paper's Figure-1 translations.  Emits every applicable
   diagnostic instead of raising; returns the sampler's GUS when one exists
   (it may exist even alongside hints, e.g. a redundant identity sampler). *)
let translate_sampler_sym ~card ~over ~input ~path ~node ~emit s =
  let emitd ?fix code message =
    emit (D.make ?fix ~code ~path ~node message)
  in
  let drop_fix = Fix.drop_sampler ~at:path s in
  let check_p what p =
    if p = 0.0 then begin
      emitd D.Zero_inclusion_probability
        (Printf.sprintf
           "%s never keeps a tuple (a = 0): estimates would need the \
            undefined scale-up 1/a"
           what);
      false
    end
    else if not (p > 0.0 && p <= 1.0) then begin
      emitd D.Probability_out_of_range
        (Printf.sprintf "%s probability %g is outside (0,1]" what p);
      false
    end
    else begin
      if p = 1.0 then
        emitd ~fix:drop_fix D.Redundant_sampler
          (Printf.sprintf
             "%s keeps every tuple: it is the identity GUS and can be \
              removed"
             what);
      true
    end
  in
  match s with
  | Sampler.Bernoulli p ->
      if not (check_p "Bernoulli" p) then None
      else if Array.length over = 1 then Some (Symalg.bernoulli ~rel:over.(0) p)
      else Some (Symalg.bernoulli_over over p)
  | Sampler.Hash_bernoulli { p; _ } ->
      let p_ok = check_p "hash-Bernoulli" p in
      if Array.length over <> 1 then begin
        emitd D.Hash_over_derived
          (Printf.sprintf
             "hash-Bernoulli over a derived input (lineage [%s]); use the \
              multi-dimensional Subsample instead"
             (String.concat "," (Array.to_list over)));
        None
      end
      else if not p_ok then None
      else Some (Symalg.bernoulli ~rel:over.(0) p)
  | Sampler.Wor n ->
      if n < 0 then begin
        emitd D.Probability_out_of_range
          (Printf.sprintf "WOR sample size %d is negative" n);
        None
      end
      else if Array.length over <> 1 || input = Over_random then begin
        emitd D.Wor_over_derived
          "WOR over a derived or already-sampled input: its inclusion \
           probability n/N depends on a random cardinality";
        None
      end
      else if input = Over_fixed then begin
        emitd D.Wor_over_deterministic_derived
          (Printf.sprintf
             "WOR(%d) over a sample-free derived input: N is fixed but not \
              statically known, so a = n/N cannot be derived without \
              executing the skeleton; sample the base table instead"
             n);
        None
      end
      else begin
        let big_n = card over.(0) in
        if n = 0 then begin
          emitd D.Zero_inclusion_probability
            "WOR(0) never keeps a tuple (a = 0): estimates would need the \
             undefined scale-up 1/a";
          None
        end
        else if big_n < 1 then begin
          emitd D.Probability_out_of_range
            (Printf.sprintf
               "WOR over the empty relation %s: a = n/N is undefined"
               over.(0));
          None
        end
        else if n > big_n then begin
          emitd D.Probability_out_of_range
            (Printf.sprintf
               "WOR(%d) over %s (N = %d): inclusion probability n/N = %g \
                exceeds 1"
               n over.(0) big_n
               (float_of_int n /. float_of_int big_n));
          None
        end
        else begin
          if n = big_n then
            emitd ~fix:drop_fix D.Redundant_sampler
              (Printf.sprintf
                 "WOR(%d) over %s keeps all N = %d tuples: it is the \
                  identity GUS and can be removed"
                 n over.(0) big_n);
          Some (Symalg.wor ~rel:over.(0) ~n ~out_of:big_n)
        end
      end
  | Sampler.Block { rows_per_block; p } ->
      let p_ok =
        if rows_per_block <= 0 then begin
          emitd D.Probability_out_of_range
            (Printf.sprintf "block size %d must be positive" rows_per_block);
          false
        end
        else check_p "block sampling" p
      in
      if not (input = Over_scan && Array.length over = 1) then begin
        emitd D.Block_over_derived
          "block sampling is only supported directly over a base table: a \
           kept block is the Bernoulli unit, so the lineage must still be \
           at base granularity";
        None
      end
      else if not p_ok then None
      else
        (* Block-granular lineage: a kept *block* is one Bernoulli unit. *)
        Some (Symalg.bernoulli ~rel:over.(0) p)
  | Sampler.Wr _ ->
      emitd D.With_replacement
        "with-replacement sampling is not a randomized filter, hence not a \
         GUS method";
      None

(* Dense public wrapper: same Figure-1 logic, materialized.  Raises
   {!Gus_core.Gus.Incompatible} past the dense width, like the dense
   constructors always did. *)
let translate_sampler ~card ~over ~input ~path ~node ~emit s =
  Option.map Symalg.to_gus
    (translate_sampler_sym ~card ~over ~input ~path ~node ~emit s)

(* ---- the plan walk ---- *)

type info = {
  skeleton : Splan.t;
  lineage : string list;  (** base relations in plan order, duplicates kept *)
  sym : Symalg.t option;  (** [None] once an error invalidates the subtree *)
  sampled : bool;
}

let dups lineage =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      let dup = Hashtbl.mem seen r in
      Hashtbl.replace seen r ();
      dup)
    lineage
  |> List.sort_uniq String.compare

(* A [Project] chain over a single [Scan] is 1:1 with the base rows. *)
let rec preserving_chain = function
  | Splan.Scan _ -> true
  | Splan.Project (_, q) -> preserving_chain q
  | _ -> false

let validate_config config =
  let check name v =
    if not (v >= 0.0) (* also rejects nan *) then
      invalid_arg
        (Printf.sprintf "Lint.run: config.%s = %g must be >= 0" name v)
  in
  check "small_a" config.small_a;
  check "variance_bound" config.variance_bound;
  check "cost_budget" config.cost_budget

let run ?(config = default_config) ?(engine = `Symbolic) ~card plan =
  validate_config config;
  Metrics.incr m_lint_runs;
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let steps = ref [] in
  let note what g = steps := (what, g) :: !steps in
  let samplers = ref [] in
  (* Interior combinator calls can only fail on inputs our own checks have
     already rejected; the guard keeps the linter total regardless. *)
  let guarded path node f =
    match f () with
    | g -> Some g
    | exception (Gus.Incompatible msg | Invalid_argument msg) ->
        emit (D.make ~code:D.Analysis_limit ~path ~node msg);
        None
  in
  let join_like path node mk l_info r_info =
    let overlap = List.filter (fun r -> List.mem r l_info.lineage) r_info.lineage in
    let overlap = List.sort_uniq String.compare overlap in
    if overlap <> [] then
      emit
        (D.make ~code:D.Self_join ~path ~node
           (Printf.sprintf
              "relation%s %s used on both sides of the join: overlapping \
               lineage violates Prop. 6's disjointness precondition \
               (self-joins are outside GUS)"
              (if List.length overlap > 1 then "s" else "")
              (String.concat ", " overlap)));
    let n = List.length l_info.lineage + List.length r_info.lineage in
    let sym =
      match (overlap, l_info.sym, r_info.sym) with
      | [], Some gl, Some gr ->
          if n > Subset.max_mask_bits then begin
            emit
              (D.make ~code:D.Analysis_limit ~path ~node
                 (Printf.sprintf
                    "%d relations exceed the %d-relation symbolic analysis \
                     limit (coefficient subsets are int bitmasks)"
                    n Subset.max_mask_bits));
            None
          end
          else
            guarded path node (fun () ->
                let g = Symalg.join gl gr in
                note "join (Prop 6)" g;
                g)
      | _ -> None
    in
    { skeleton = mk l_info.skeleton r_info.skeleton;
      lineage = l_info.lineage @ r_info.lineage;
      sym;
      sampled = l_info.sampled || r_info.sampled }
  in
  let rec go path plan =
    let node = node_label plan in
    match plan with
    | Splan.Scan name ->
        { skeleton = Splan.Scan name;
          lineage = [ name ];
          sym = Some (Symalg.identity [| name |]);
          sampled = false }
    | Splan.Select (p, q) ->
        (* Prop 5: selection commutes with GUS. *)
        let c = go (path @ [ 0 ]) q in
        { c with skeleton = Splan.Select (p, c.skeleton) }
    | Splan.Project (fields, q) ->
        let c = go (path @ [ 0 ]) q in
        { c with skeleton = Splan.Project (fields, c.skeleton) }
    | Splan.Equi_join { left; right; left_key; right_key } ->
        let l = go (path @ [ 0 ]) left and r = go (path @ [ 1 ]) right in
        join_like path node
          (fun ls rs ->
            Splan.Equi_join { left = ls; right = rs; left_key; right_key })
          l r
    | Splan.Theta_join (p, left, right) ->
        let l = go (path @ [ 0 ]) left and r = go (path @ [ 1 ]) right in
        join_like path node (fun ls rs -> Splan.Theta_join (p, ls, rs)) l r
    | Splan.Cross (left, right) ->
        let l = go (path @ [ 0 ]) left and r = go (path @ [ 1 ]) right in
        join_like path node (fun ls rs -> Splan.Cross (ls, rs)) l r
    | Splan.Sample (s, q) ->
        let c = go (path @ [ 0 ]) q in
        (match (s, q) with
        | (Sampler.Bernoulli _ | Sampler.Hash_bernoulli _), Splan.Select _ ->
            emit
              (D.make ~code:D.Sample_select_pushdown ~path ~node
                 ~fix:(Fix.push_below_select ~at:path s)
                 "this per-tuple sampler commutes with the selection below \
                  it: pushing the sample below the selection is \
                  SOA-equivalent and evaluates the predicate only on \
                  sampled tuples")
        | _ -> ());
        (match (s, q) with
        | Sampler.Bernoulli p1, Splan.Sample ((Sampler.Bernoulli p2 as s2), _)
          when p1 > 0.0 && p1 <= 1.0 && p2 > 0.0 && p2 <= 1.0 ->
            let merged = Sampler.Bernoulli (p1 *. p2) in
            emit
              (D.make ~code:D.Stacked_samplers ~path ~node
                 ~fix:(Fix.merge_stacked ~at:path s s2 merged)
                 (Printf.sprintf
                    "two stacked Bernoulli samplers compose into one \
                     (Prop. 8): %s over %s is the single %s"
                    (Sampler.to_string s) (Sampler.to_string s2)
                    (Sampler.to_string merged)))
        | _ -> ());
        let input =
          match q with
          | Splan.Scan _ -> Over_scan
          | _ when c.sampled -> Over_random
          | _ when preserving_chain q -> Over_preserving
          | _ -> Over_fixed
        in
        let dup_rels = dups c.lineage in
        let over =
          (* Deduplicate so the sampler's own checks still run (and its
             diagnostics still emit) even when the join below already broke
             Prop 6's disjointness precondition — that failure is reported
             as GUS001 at the join, not silenced here. *)
          let seen = Hashtbl.create 8 in
          Array.of_list
            (List.filter
               (fun r ->
                 if Hashtbl.mem seen r then false
                 else begin Hashtbl.add seen r (); true end)
               c.lineage)
        in
        let gs =
          Option.join
            (guarded path node (fun () ->
                 translate_sampler_sym ~card ~over ~input ~path ~node ~emit s))
        in
        (* With overlapping lineage below, no single GUS describes the
           subtree; keep the diagnostics but drop the value. *)
        let gs = if dup_rels = [] then gs else None in
        Option.iter (fun g -> samplers := (path, g) :: !samplers) gs;
        let sym =
          match (gs, c.sym) with
          | Some gs, Some g ->
              note (Printf.sprintf "translate %s" node) gs;
              (* Prop 8: stack the sampler's GUS on the input's GUS. *)
              guarded path node (fun () ->
                  let combined = Symalg.compact gs g in
                  note (Printf.sprintf "compact %s into input" node) combined;
                  combined)
          | _ -> None
        in
        { skeleton = c.skeleton; lineage = c.lineage; sym; sampled = true }
    | Splan.Distinct q ->
        let c = go (path @ [ 0 ]) q in
        let rejected =
          match c.sym with
          | Some g -> not (Symalg.is_identity g)
          | None -> c.sampled
        in
        if rejected then
          emit
            (D.make ~code:D.Distinct_over_sample ~path ~node
               "DISTINCT above sampling is outside GUS: duplicate \
                elimination depends on more than pairwise inclusion \
                probabilities");
        let sym = if rejected then None else c.sym in
        { c with skeleton = Splan.Distinct c.skeleton; sym }
    | Splan.Union_samples (left, right) ->
        let l = go (path @ [ 0 ]) left and r = go (path @ [ 1 ]) right in
        let same = Splan.equal l.skeleton r.skeleton in
        if not same then
          emit
            (D.make ~code:D.Union_skeleton_mismatch ~path ~node
               "union of samples of two different expressions: Prop. 7 \
                requires both samples to come from the same expression");
        let sym =
          match (same, l.sym, r.sym) with
          | true, Some gl, Some gr ->
              guarded path node (fun () ->
                  let g = Symalg.union gl gr in
                  note "GUS union (Prop 7)" g;
                  g)
          | _ -> None
        in
        { skeleton = l.skeleton;
          lineage = l.lineage;
          sym;
          sampled = l.sampled || r.sampled }
  in
  let root = go [] plan in
  let facts = Dataflow.analyze ~card plan in
  let cost =
    match root.sym with
    | None -> None
    | Some sym ->
        let node = node_label plan in
        let a_root, analyzed =
          match engine with
          | `Symbolic ->
              List.iter emit (check_sym ~path:[] ~node sym);
              ( Some sym.Symalg.a,
                guarded [] node (fun () -> Cost.analyze_sym ~facts sym) )
          | `Dense -> (
              (* Legacy measurement path: materialize the full 2^n vector
                 and run the historical checks on it, exactly as before the
                 symbolic engine existed. *)
              match guarded [] node (fun () -> Symalg.to_gus sym) with
              | None -> (None, None)
              | Some g ->
                  List.iter emit (check_gus ~path:[] ~node g);
                  ( Some g.Gus.a,
                    guarded [] node (fun () -> Cost.analyze ~facts g) ))
        in
        (match a_root with
        | Some a when a > 0.0 && a < config.small_a ->
            emit
              (D.make ~code:D.Small_inclusion_probability ~path:[] ~node
                 (Printf.sprintf
                    "effective sampling fraction a = %g is below %g: Theorem-1 \
                     variance terms scale with c_S/a\xc2\xb2 (blow-up factor \
                     \xe2\x89\x88 %.3g)"
                    a config.small_a
                    (1.0 /. (a *. a))))
        | _ -> ());
        match analyzed with
        | None -> None
        | Some cost ->
            (* Cost/variance findings only make sense on sampled plans: a
               sample-free plan answers exactly and never runs the
               estimator, so its identity GUS (every relation inert)
               would otherwise fire GUS014/GUS016 as pure noise. *)
            if root.sampled && cost.Cost.predicted_cost > config.cost_budget
            then
              emit
                (D.make ~code:D.Enumeration_cost ~path:[] ~node
                   (Printf.sprintf
                      "coefficient enumeration needs %d moment pass(es) \
                       over \xe2\x89\x88 %.3g group(s) \xe2\x89\x88 %.3g \
                       operations, above the %.3g budget: consider sampling \
                       fewer relations"
                      (cost.Cost.passes - cost.Cost.skipped)
                      cost.Cost.est_groups cost.Cost.predicted_cost
                      config.cost_budget));
            if root.sampled && cost.Cost.variance_bound >= config.variance_bound
            then
              emit
                (D.make ~code:D.Variance_bound ~path:[] ~node
                   (Printf.sprintf
                      "worst-case relative variance (Theorem 1, f \xe2\x89\xa5 \
                       0): Var/E\xc2\xb2 \xe2\x89\xa4 %.3g \xe2\x89\xa5 the \
                       %.3g threshold \xe2\x80\x94 relative standard error \
                       up to \xe2\x89\x88 %.3g\xc3\x97"
                      cost.Cost.variance_bound config.variance_bound
                      (Float.sqrt cost.Cost.variance_bound)));
            if root.sampled && cost.Cost.skip_mask <> 0 then begin
              let inert =
                List.filter_map
                  (fun i ->
                    if Subset.mem cost.Cost.skip_mask i then
                      Some sym.Symalg.rels.(i)
                    else None)
                  (List.init (Symalg.n_rels sym) Fun.id)
              in
              emit
                (D.make ~code:D.Zero_coefficients ~path:[] ~node
                   (Printf.sprintf
                      "%d of %d coefficient subset(s) are provably zero \
                       (Prop. 6 product form: [%s] carry no sampling \
                       randomness): the moments kernel skips those passes"
                      cost.Cost.skipped cost.Cost.passes
                      (String.concat "," inert)))
            end;
            Some cost
  in
  let diagnostics =
    List.stable_sort
      (fun d1 d2 ->
        let c = D.compare_path d1.D.path d2.D.path in
        if c <> 0 then c else compare (D.code_id d1.D.code) (D.code_id d2.D.code))
      (List.rev !diags)
  in
  let has_error =
    List.exists (fun d -> D.severity d = D.Error) diagnostics
  in
  let analysis =
    match (has_error, root.sym, cost) with
    | false, Some sym, Some cost ->
        Some
          { skeleton = root.skeleton;
            sym;
            gus = lazy (Symalg.to_gus sym);
            steps = List.rev !steps;
            facts;
            cost;
            sampler_gus = List.rev !samplers }
    | _ -> None
  in
  { diagnostics; analysis }

let run_db ?config ?engine db plan =
  run ?config ?engine plan
    ~card:(fun r ->
      Gus_relational.Relation.cardinality (Gus_relational.Database.find db r))

(* ---- machine-applicable fixes ---- *)

let fixes r = List.filter_map (fun d -> d.D.fix) r.diagnostics

let apply_fixes ?config ~card plan =
  (* Fixpoint loop: applying one fix can expose another (merging two
     stacked Bernoullis can stack the result on a third).  Each round
     re-lints, so every applied fix came from a fresh report; the plan
     shrinks or keeps its size each round, so 32 rounds is far beyond any
     real chain. *)
  let rec loop rounds plan applied =
    if rounds = 0 then (plan, List.rev applied)
    else
      let report = run ?config ~card plan in
      match fixes report with
      | [] -> (plan, List.rev applied)
      | fs -> (
          match Fix.apply_all fs plan with
          | _, [] -> (plan, List.rev applied)
          | plan', done_ -> loop (rounds - 1) plan' (List.rev_append done_ applied))
  in
  loop 32 plan []

(* ---- rendering ---- *)

let count_severity sev r = List.length (with_severity sev r)

let summary r =
  Printf.sprintf "%d error(s), %d warning(s), %d hint(s)"
    (count_severity D.Error r)
    (count_severity D.Warning r)
    (count_severity D.Hint r)

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." D.pp d) r.diagnostics;
  (match r.analysis with
  | Some a ->
      Format.fprintf ppf "plan is GUS-analyzable: a = %.6g over [%s]@."
        a.sym.Symalg.a
        (String.concat "," (Array.to_list a.sym.Symalg.rels))
  | None -> Format.fprintf ppf "plan is not GUS-analyzable@.");
  Format.fprintf ppf "%s@." (summary r)

let pp_annotated_plan ppf (plan, r) =
  let markers_at path =
    List.filter_map
      (fun d ->
        if D.compare_path d.D.path path = 0 then Some (D.code_id d.D.code)
        else None)
      r.diagnostics
  in
  Gus_obs.Planfmt.pp ~label:node_label ~children:Splan.children
    ~annot:(fun path _ ->
      match markers_at path with
      | [] -> ""
      | ms -> "  <-- " ^ String.concat ", " ms)
    ppf plan

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"errors\": %d,\n  \"warnings\": %d,\n  \"hints\": %d,\n"
       (count_severity D.Error r)
       (count_severity D.Warning r)
       (count_severity D.Hint r));
  Buffer.add_string buf
    (Printf.sprintf "  \"analyzable\": %b,\n"
       (match r.analysis with Some _ -> true | None -> false));
  (match r.analysis with
  | Some a ->
      let c = a.cost in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"analysis\": {\"a\": %g, \"class\": \"%s\", \"relations\": \
            %d, \"coefficient_passes\": %d, \"skipped_passes\": %d, \
            \"est_groups\": %g, \"predicted_cost\": %g, \"variance_bound\": \
            %g},\n"
           a.sym.Symalg.a
           (Absdom.Cls.to_string c.Cost.cls)
           c.Cost.n_rels c.Cost.passes c.Cost.skipped c.Cost.est_groups
           c.Cost.predicted_cost c.Cost.variance_bound)
  | None -> ());
  Buffer.add_string buf "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (D.to_json d))
    r.diagnostics;
  if r.diagnostics <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}";
  Buffer.contents buf
