lib/util/dist.ml: Array Float Rng
