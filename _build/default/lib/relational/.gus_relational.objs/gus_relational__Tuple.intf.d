lib/relational/tuple.mli: Format Lineage Value
