test/test_gus.ml: Alcotest Array Float Gus_core Gus_util List QCheck2 QCheck_alcotest
