lib/sql/runner.ml: Ast Expr Format Gus_core Gus_estimator Gus_relational Gus_stats Gus_util Hashtbl List Parser Planner Relation String Value
