lib/estimator/sbox.mli: Gus_core Gus_relational Gus_stats
