lib/experiments/exp_coverage.ml: Database Gus_core Gus_estimator Gus_relational Gus_sampling Gus_stats Gus_util Harness Printf Relation
