lib/sql/ast.ml: Expr Format Gus_relational List Printf String
