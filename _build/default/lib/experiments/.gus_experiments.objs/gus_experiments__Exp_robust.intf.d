lib/experiments/exp_robust.mli: Gus_core Gus_relational
