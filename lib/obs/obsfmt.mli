(** Rendering helpers shared by the observability exporters.

    {!Gus_obs} sits below the service layer, so it cannot use
    [Gus_service.Json]; these duplicate exactly the float contract the
    serving protocol relies on — shortest rendering that round-trips
    bit-identically — because the journal replay guarantee ("re-parse
    an exported estimate, get the same bits") depends on it. *)

val float_to_string : float -> string
(** Integral floats as ["42"]; everything else via the shortest of
    [%.15g]/[%.16g]/[%.17g] that parses back to the same bits.  Not
    defined for non-finite values (use {!float_json}). *)

val float_json : float -> string
(** {!float_to_string} for finite values; ["\"nan\""], ["\"inf\""],
    ["\"-inf\""] for the rest (JSON has no non-finite literals, and the
    journal must not silently [null] them). *)

val add_json_string : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal (quoted, escaped). *)
