lib/stats/summary.mli:
