(* End-to-end integration tests: the paper's worked examples through the
   whole stack, coverage sanity, and the experiment registry. *)

module Gus = Gus_core.Gus
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
module Sampler = Gus_sampling.Sampler
module Runner = Gus_sql.Runner
open Gus_relational

let check = Alcotest.check
let check_bool = check Alcotest.bool
let close ?(eps = 1e-9) what expected actual =
  check (Alcotest.float eps) what expected actual

let db = lazy (Gus_tpch.Tpch.generate ~seed:101 ~scale:0.25 ())

(* ---- the paper's numeric tables, through the public entry points ---- *)

let test_example3_via_rewriter () =
  let g = Gus_experiments.Exp_query1.derived () in
  List.iter
    (fun (name, paper) ->
      let v =
        if name = "a" then g.Gus.a
        else begin
          let found = ref nan in
          Array.iteri
            (fun s bv -> if "b" ^ Gus.subset_name g s = name then found := bv)
            g.Gus.b;
          !found
        end
      in
      check_bool
        (Printf.sprintf "%s within print precision" name)
        true
        (Float.abs (v -. paper) /. paper < 5e-4))
    Gus_experiments.Exp_query1.paper_values

let test_figure4_via_rewriter () =
  let r = Gus_experiments.Exp_fig4.derived () in
  let g = (Lazy.force r.Rewrite.gus) in
  check Alcotest.int "4 relations" 4 (Gus.n_rels g);
  check_bool "a123" true (Float.abs (g.Gus.a -. 3.334e-4) /. 3.334e-4 < 5e-4);
  (* every printed coefficient matches to print precision *)
  List.iter
    (fun (names, paper) ->
      let mask =
        List.fold_left
          (fun acc n ->
            let pos = ref (-1) in
            Array.iteri (fun i r -> if r = n then pos := i) g.Gus.rels;
            Gus_util.Subset.add acc !pos)
          Gus_util.Subset.empty names
      in
      let v = Gus.b_get g mask in
      check_bool "coefficient" true (Float.abs (v -. paper) /. paper < 1e-3))
    Gus_experiments.Exp_fig4.paper_g123

let test_figure5_via_library () =
  let g = Gus_experiments.Exp_fig5.stacked () in
  check_bool "a" true (Float.abs (g.Gus.a -. 4e-5) < 1e-9)

(* ---- end-to-end estimation quality ---- *)

let test_query1_estimate_within_bounds () =
  let db = Lazy.force db in
  let plan = Gus_experiments.Harness.query1_plan ~bernoulli:0.2 ~wor:800 () in
  let f = Gus_experiments.Harness.revenue_f in
  let truth = Sbox.exact db plan ~f in
  let report, _ = Sbox.run ~seed:77 db plan ~f in
  let ci = Sbox.interval ~coverage:0.99 Interval.Chebyshev report in
  check_bool "99% Chebyshev contains truth" true (Interval.contains ci truth)

let test_coverage_sanity () =
  (* 100 trials of a 2-way Bernoulli join: the normal 95% interval should
     cover the truth at least 85 times (fixed seeds, so deterministic). *)
  let db = Lazy.force db in
  let plan = Gus_experiments.Harness.join2_plan ~p_lineitem:0.15 ~p_orders:0.3 in
  let f = Gus_experiments.Harness.revenue_f in
  let truth = Sbox.exact db plan ~f in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let hits = ref 0 in
  for t = 1 to 100 do
    let sample = Splan.exec db (Gus_util.Rng.create (666 + t)) plan in
    let r = Sbox.of_relation ~gus ~f sample in
    if Interval.contains (Sbox.interval Interval.Normal r) truth then incr hits
  done;
  check_bool (Printf.sprintf "coverage %d/100 >= 85" !hits) true (!hits >= 85)

let test_sql_end_to_end_quantiles () =
  let db = Lazy.force db in
  let sql =
    "CREATE VIEW approx (lo, hi) AS \
     SELECT QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.05) AS lo, \
            QUANTILE(SUM(l_discount*(1.0-l_tax)), 0.95) AS hi \
     FROM lineitem TABLESAMPLE (25 PERCENT), orders TABLESAMPLE (2000 ROWS) \
     WHERE l_orderkey = o_orderkey AND l_extendedprice > 100.0"
  in
  let truth = snd (List.hd (Runner.run_exact db sql)) in
  (* Across seeds, [lo,hi] should usually bracket the truth (90% nominal).
     Count over 40 seeds. *)
  let hits = ref 0 in
  for seed = 1 to 40 do
    let result = Runner.run ~seed db sql in
    match result.Runner.cells with
    | [ lo; hi ] ->
        if lo.Runner.value <= truth && truth <= hi.Runner.value then incr hits
    | _ -> Alcotest.fail "two cells"
  done;
  check_bool (Printf.sprintf "brackets truth %d/40 >= 30" !hits) true (!hits >= 30)

let test_block_sampling_end_to_end () =
  (* Block sampling through the whole stack: unbiased and covered. *)
  let db = Lazy.force db in
  let plan =
    Splan.Sample (Sampler.Block { rows_per_block = 40; p = 0.2 }, Splan.Scan "lineitem")
  in
  let f = Expr.col "l_quantity" in
  let truth = Sbox.exact db plan ~f in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let est = Summary.create () in
  let hits = ref 0 in
  for t = 1 to 150 do
    let sample = Splan.exec db (Gus_util.Rng.create (4000 + t)) plan in
    let r = Sbox.of_relation ~gus ~f sample in
    Summary.add est r.Sbox.estimate;
    if Interval.contains (Sbox.interval Interval.Normal r) truth then incr hits
  done;
  close ~eps:(0.05 *. truth) "unbiased over blocks" truth (Summary.mean est);
  check_bool (Printf.sprintf "block coverage %d/150" !hits) true (!hits >= 120)

let test_union_of_samples_end_to_end () =
  (* Prop 7 in practice: two Bernoulli samples of lineitem, united by
     lineage, estimated with the union GUS. *)
  let db = Lazy.force db in
  let plan =
    Splan.Union_samples
      ( Splan.Sample (Sampler.Bernoulli 0.15, Splan.Scan "lineitem"),
        Splan.Sample (Sampler.Bernoulli 0.20, Splan.Scan "lineitem") )
  in
  let f = Expr.col "l_quantity" in
  let truth = Sbox.exact db plan ~f in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  close ~eps:1e-9 "union rate" (1.0 -. (0.85 *. 0.8)) gus.Gus.a;
  let est = Summary.create () in
  for t = 1 to 200 do
    let sample = Splan.exec db (Gus_util.Rng.create (5000 + t)) plan in
    Summary.add est (Sbox.of_relation ~gus ~f sample).Sbox.estimate
  done;
  close ~eps:(0.02 *. truth) "union estimate unbiased" truth (Summary.mean est)

let test_subsampled_variance_end_to_end () =
  let db = Lazy.force db in
  let plan = Gus_experiments.Harness.join2_plan ~p_lineitem:0.4 ~p_orders:0.5 in
  let f = Gus_experiments.Harness.revenue_f in
  let gus = (Lazy.force (Rewrite.analyze_db db plan).Rewrite.gus) in
  let sample = Splan.exec db (Gus_util.Rng.create 31) plan in
  let full = Sbox.of_relation ~gus ~f sample in
  let sub = Sbox.subsampled ~gus ~f ~target:2000 ~seed:77 sample in
  close "same estimate" full.Sbox.estimate sub.Sbox.estimate;
  check_bool "sd within 30% of full analysis" true
    (Float.abs ((sub.Sbox.stddev /. full.Sbox.stddev) -. 1.0) < 0.3)

let test_avg_via_sql_close_to_truth () =
  let db = Lazy.force db in
  let sql =
    "SELECT AVG(l_extendedprice) FROM lineitem TABLESAMPLE (30 PERCENT), orders \
     WHERE l_orderkey = o_orderkey"
  in
  let truth = snd (List.hd (Runner.run_exact db sql)) in
  let result = Runner.run ~seed:8 db sql in
  let cell = List.hd result.Runner.cells in
  check_bool "AVG within 4 sd" true
    (Float.abs (cell.Runner.value -. truth) <= 4.0 *. cell.Runner.stddev)

(* ---- registry coherence ---- *)

let test_registry () =
  check Alcotest.int "16 experiments" 16 (List.length Gus_experiments.Registry.all);
  check_bool "find T3" true (Gus_experiments.Registry.find "t3" <> None);
  check_bool "unknown" true (Gus_experiments.Registry.find "Z9" = None);
  List.iter
    (fun e ->
      check_bool "id well-formed" true
        (let n = String.length e.Gus_experiments.Registry.id in
         n >= 2 && n <= 3))
    Gus_experiments.Registry.all

(* ---- failure injection ---- *)

let test_failure_modes () =
  let db = Lazy.force db in
  check_bool "WR plan rejected by analysis" true
    (try
       ignore (Rewrite.analyze_db db (Splan.Sample (Sampler.Wr 5, Splan.Scan "lineitem")));
       false
     with Rewrite.Unsupported _ -> true);
  check_bool "unknown relation at exec" true
    (try
       ignore (Splan.exec db (Gus_util.Rng.create 1) (Splan.Scan "nope"));
       false
     with Database.Unknown_relation _ -> true);
  check_bool "bad SQL surfaces Parser.Error" true
    (try ignore (Runner.run db "SELECT FROM"); false
     with Gus_sql.Parser.Error _ -> true);
  (* empty sample: a 0-row sample still yields a finite report *)
  let gus = Gus.bernoulli ~rel:"lineitem" 0.5 in
  let r = Sbox.of_pairs ~gus [||] in
  close "empty estimate" 0.0 r.Sbox.estimate;
  close "empty variance" 0.0 r.Sbox.variance

let () =
  Alcotest.run "integration"
    [ ( "paper-tables",
        [ Alcotest.test_case "Example 3 (T2)" `Quick test_example3_via_rewriter;
          Alcotest.test_case "Figure 4 (T3)" `Quick test_figure4_via_rewriter;
          Alcotest.test_case "Figure 5 (T4)" `Quick test_figure5_via_library ] );
      ( "estimation",
        [ Alcotest.test_case "Query 1 in bounds" `Quick test_query1_estimate_within_bounds;
          Alcotest.test_case "coverage sanity" `Slow test_coverage_sanity;
          Alcotest.test_case "SQL quantile view" `Slow test_sql_end_to_end_quantiles;
          Alcotest.test_case "block sampling e2e" `Slow test_block_sampling_end_to_end;
          Alcotest.test_case "union of samples e2e" `Slow test_union_of_samples_end_to_end;
          Alcotest.test_case "subsampled variance e2e" `Quick test_subsampled_variance_end_to_end;
          Alcotest.test_case "AVG via SQL" `Quick test_avg_via_sql_close_to_truth ] );
      ("registry", [ Alcotest.test_case "experiment registry" `Quick test_registry ]);
      ("failures", [ Alcotest.test_case "failure modes" `Quick test_failure_modes ]) ]
