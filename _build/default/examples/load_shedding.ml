(* Load shedding (paper Section 8): a stream processor that cannot keep up
   must drop tuples.  Modelling the shedder as a Bernoulli GUS per input
   stream lets us pick the highest shedding rate whose estimated aggregate
   still meets an accuracy target - including for joins of two streams,
   where per-stream rates interact.

   Run with:  dune exec examples/load_shedding.exe *)

module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
open Gus_relational

let () =
  (* The "stream history" we calibrate on: one buffered window. *)
  let db = Gus_tpch.Tpch.generate ~seed:23 ~scale:0.5 () in
  let f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount")) in
  let window =
    Splan.equi_join (Splan.scan "lineitem") (Splan.scan "orders")
      ~on:("l_orderkey", "o_orderkey")
  in
  let full = Splan.exec_exact db window in
  let y = Moments.of_relation ~f full in
  let eval = Expr.bind_float full.Relation.schema f in
  let total = Relation.fold (fun acc tup -> acc +. eval tup) 0.0 full in

  (* The processor can only retain a fraction of each stream.  For keep
     rates k, the estimate's relative sd follows from Theorem 1. *)
  let rel_sd keep_li keep_od =
    let g =
      Gus.join
        (Gus.bernoulli ~rel:"lineitem" keep_li)
        (Gus.bernoulli ~rel:"orders" keep_od)
    in
    sqrt (Float.max 0.0 (Gus.variance g ~y)) /. total
  in
  Printf.printf
    "windowed join aggregate; capacity allows keeping only part of each \
     stream.\n\n";
  Printf.printf "%-10s" "keep li\\od";
  let rates = [ 0.05; 0.1; 0.2; 0.5; 1.0 ] in
  List.iter (fun r -> Printf.printf "%10.0f%%" (100.0 *. r)) rates;
  print_newline ();
  List.iter
    (fun kl ->
      Printf.printf "%9.0f%%" (100.0 *. kl);
      List.iter (fun ko -> Printf.printf "%10.2f%%" (100.0 *. rel_sd kl ko)) rates;
      print_newline ())
    rates;
  (* Budget: keep-rate product limited by throughput; find the best split. *)
  let budget = 0.05 in
  let best = ref (nan, nan, infinity) in
  let steps = 60 in
  for i = 1 to steps do
    let kl = float_of_int i /. float_of_int steps in
    let ko = Float.min 1.0 (budget /. kl) in
    if kl *. ko >= budget -. 1e-9 then begin
      let sd = rel_sd kl ko in
      let _, _, cur = !best in
      if sd < cur then best := (kl, ko, sd)
    end
  done;
  let kl, ko, sd = !best in
  Printf.printf
    "\nrelative sd of the estimate for each keep-rate pair (above).\n\
     with a combined budget keep_li * keep_od = %.2f, the best split is \
     keep %.0f%% of lineitem and %.0f%% of orders (rel. sd %.2f%%).\n\n"
    budget (100.0 *. kl) (100.0 *. ko) (100.0 *. sd);

  (* Part 2: the adaptive window-by-window shedder (Gus_online.Shedding):
     rates are re-optimized between windows from the previous window's
     Y-hat moments, under a hard throughput budget. *)
  let module Shedding = Gus_online.Shedding in
  let windows = 5 and capacity = 3000 in
  Printf.printf
    "adaptive shedder: %d windows, capacity %d kept tuples per window\n\n"
    windows capacity;
  let reports = Shedding.simulate ~seed:3 db ~plan:window ~f ~windows ~capacity in
  let truths = Shedding.window_truth db ~plan:window ~f ~windows in
  Printf.printf "%7s %18s %14s %14s %9s %s\n" "window" "rates (li, od)"
    "estimate" "truth" "rel.err%" "kept/arrived";
  List.iter2
    (fun r truth ->
      let rate name = List.assoc name r.Shedding.rates in
      let kept = List.fold_left (fun a (_, k) -> a + k) 0 r.Shedding.kept in
      let arrived = List.fold_left (fun a (_, n) -> a + n) 0 r.Shedding.arrivals in
      Printf.printf "%7d %9.2f, %6.2f %14.4g %14.4g %9.2f %d/%d\n"
        r.Shedding.window (rate "lineitem") (rate "orders")
        r.Shedding.report.Gus_estimator.Sbox.estimate truth
        (100.0 *. Float.abs (r.Shedding.report.Gus_estimator.Sbox.estimate -. truth)
        /. truth)
        kept arrived)
    reports truths;
  Printf.printf
    "\n(the first window sheds proportionally; later windows split the \
     budget to minimize the predicted variance from the previous window's \
     moments.)\n"
