lib/experiments/exp_query1.mli: Gus_core
