lib/experiments/exp_accuracy.mli:
