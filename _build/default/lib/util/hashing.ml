let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine a b =
  (* Boost-style combine strengthened with a full mix. *)
  mix64 (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) (Int64.logxor b (Int64.shift_left a 13)))

let hash_int ~seed x = combine (mix64 (Int64.of_int seed)) (mix64 (Int64.of_int x))

let hash_string ~seed s =
  let h = ref (mix64 (Int64.of_int seed)) in
  String.iter (fun c -> h := combine !h (Int64.of_int (Char.code c))) s;
  !h

let prf_float ~seed id =
  let h = hash_int ~seed id in
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)
