Flight-record a serving session with `gusdb serve --journal`, then
re-execute it with `gusdb replay` and assert bit-identical estimates.

  $ cat > requests <<'EOF'
  > {"op":"register","name":"t","scale":0.05}
  > {"op":"prepare","dataset":"t","name":"q","sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)"}
  > {"op":"execute","handle":"q","seed":7}
  > {"op":"execute","handle":"q","seed":8,"rates":{"lineitem":0.5}}
  > {"op":"execute","handle":"q","seed":7}
  > EOF
  $ gusdb serve --journal journal.ndjson < requests > /dev/null

One register event plus one exec event per execution — the cache hit for
the repeated seed-7 request is journaled too.  Wall time aside, every
field is deterministic: the register event carries the dataset's build
recipe, each exec carries the SQL, its FNV-1a hash, the effective
sampling rates, the bit-exact estimate, and the Theorem-1 top
variance-share node.

  $ wc -l < journal.ndjson
  4
  $ sed -n 1p journal.ndjson
  {"ev":"register","id":0,"dataset":"t","version":1,"source":{"source":"tpch","scale":0.05,"seed":20130630}}
  $ sed -n 2p journal.ndjson | sed 's/"wall_ns":[0-9]*/"wall_ns":_/'
  {"ev":"exec","id":1,"dataset":"t","version":1,"sql":"SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT)","sql_hash":"1289e37f671bd4aa","seed":7,"rates":{"lineitem":0.2},"explain":false,"exact":false,"cached":false,"estimate":19508097.968093183,"variance":863261783656.4375,"stddev":929118.8210645813,"rel_ci":0.09334958704149772,"top":{"path":[],"node":"Bernoulli(0.2)","share":0.9999999999999668},"wall_ns":_,"breach":false}
  $ grep -c '"cached":true' journal.ndjson
  1
  $ sed -n 3p journal.ndjson | grep -o '"rates":{[^}]*}'
  "rates":{"lineitem":0.5}

Replay rebuilds the dataset from the journaled source and re-runs every
execution with its journaled seed/rates/explain/exact; estimate, stddev
and variance must match bit for bit:

  $ gusdb replay journal.ndjson
  replayed 3 execution(s) over 1 registered dataset(s)
  all 3 estimate(s) bit-identical

  $ gusdb replay --json journal.ndjson
  {"ok":true,"op":"replay","registers":1,"skipped":0,"executions":3,"matched":3,"mismatches":[]}

A single flipped digit in a journaled estimate is a reported mismatch
and exit 1:

  $ sed '2s/"estimate":1/"estimate":2/' journal.ndjson > tampered.ndjson
  $ gusdb replay tampered.ndjson
  replayed 3 execution(s) over 1 registered dataset(s)
  MISMATCH line 2 [estimate]: journaled 29508097.968093183, replayed 19508097.968093183  (SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 PERCENT))
  [1]

A line that does not parse is a corrupted-journal diagnostic, also
exit 1:

  $ sed '3s/.*/CORRUPT/' journal.ndjson > corrupt.ndjson
  $ gusdb replay corrupt.ndjson
  gusdb replay: corrupt.ndjson:3: corrupted journal line: byte 0: unexpected 'C'
  [1]
