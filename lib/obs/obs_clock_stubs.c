/* Monotonic nanosecond clock for Gus_obs.Trace.

   Returned as an unboxed OCaml int: 63 bits of nanoseconds cover ~146
   years of uptime, so span arithmetic never allocates.  CLOCK_MONOTONIC
   is immune to wall-clock adjustments (NTP slews, manual resets), which
   matters because spans from different domains are compared against each
   other when the per-domain buffers are merged. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value gus_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
