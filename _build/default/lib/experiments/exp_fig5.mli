(** T4 — Figure 5 / Examples 5–6: the Section-7 subsampling pipeline.
    Reproduces (a) the bi-dimensional Bernoulli B(0.2, 0.3) composition of
    Example 5 and (b) the stacked operator G(a₁₂₃, b̄₁₂₃) of Figure 5
    obtained by compacting it onto Query 1's GUS. *)

val run : unit -> unit

val bi_bernoulli : unit -> Gus_core.Gus.t
(** Example 5's G₃ = B(0.2) ∘ B(0.3) via Prop. 9. *)

val stacked : unit -> Gus_core.Gus.t
(** Figure 5's G(a₁₂₃): G₃ compacted onto Query 1's G₁₂ (Prop. 8). *)
