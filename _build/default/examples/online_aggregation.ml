(* Online aggregation: watch the estimate refine while the join's inputs
   stream in, in random order.  Every checkpoint's interval comes from the
   GUS algebra (a prefix of a random permutation is a WOR sample), so no
   bespoke online-aggregation statistics are needed - the capability the
   ripple-join / DBO line of work built dedicated theory for falls out of
   the algebra.

   Run with:  dune exec examples/online_aggregation.exe *)

module Online = Gus_online.Online
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Splan = Gus_core.Splan
open Gus_relational

let () =
  let db = Gus_tpch.Tpch.generate ~seed:31 ~scale:1.0 () in
  let plan =
    Splan.equi_join (Splan.scan "lineitem") (Splan.scan "orders")
      ~on:("l_orderkey", "o_orderkey")
  in
  let f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount")) in
  let truth = Sbox.exact db plan ~f in
  Printf.printf "streaming lineitem + orders in random order...\n\n";
  Printf.printf "%9s  %14s  %28s  %8s\n" "scanned" "estimate" "95% interval" "width%";
  let bar frac = String.make (int_of_float (30.0 *. frac)) '#' in
  List.iter
    (fun cp ->
      let frac =
        List.fold_left (fun acc (_, fr) -> acc +. fr) 0.0 cp.Online.fractions
        /. float_of_int (List.length cp.Online.fractions)
      in
      let ci = cp.Online.interval in
      Printf.printf "%8.0f%%  %14.4g  [%12.4g, %12.4g]  %7.2f%%  %s\n"
        (100.0 *. frac)
        cp.Online.report.Sbox.estimate ci.Interval.lo ci.Interval.hi
        (100.0 *. Interval.width ci /. truth)
        (bar frac))
    (Online.run ~seed:7 db ~plan ~f ~checkpoints:12);
  Printf.printf "\nexact answer: %.4g (the final checkpoint pinpoints it: at \
                 100%% the WOR sample IS the data and the GUS is the \
                 identity).\n" truth
