lib/experiments/exp_accuracy.ml: Gus_relational Gus_util Harness List Printf
