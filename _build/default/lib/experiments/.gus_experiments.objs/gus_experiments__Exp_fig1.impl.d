lib/experiments/exp_fig1.ml: Array Float Gus_core Gus_relational Gus_sampling Gus_util Harness Printf Relation Schema Tuple Value
