lib/relational/value.ml: Bool Float Format Gus_util Hashtbl Int Int64 Printf String
