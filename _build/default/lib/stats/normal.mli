(** Standard normal distribution: CDF, quantile, error function.

    The SBox turns an (estimate, variance) pair into confidence bounds by
    inverting the normal CDF at user-supplied quantiles (the QUANTILE(…, q)
    syntax from the paper's introduction). *)

val erf : float -> float
(** Abramowitz–Stegun 7.1.26-style rational approximation refined with a
    continued-fraction tail; absolute error below 1.2e-7, ample for
    confidence-interval work. *)

val cdf : float -> float
(** Φ(x) for the standard normal. *)

val quantile : float -> float
(** Φ⁻¹(p) for p ∈ (0,1), Acklam's algorithm (relative error < 1.15e-9).
    Raises [Invalid_argument] outside (0,1). *)

val z_95 : float
(** Φ⁻¹(0.975) ≈ 1.96 — the paper's optimistic 95% factor. *)

val chebyshev_factor : float -> float
(** [chebyshev_factor coverage] is the k with P(|X−µ| ≥ kσ) ≤ 1−coverage,
    i.e. 1/√(1−coverage).  At 0.95 this is ≈ 4.47, the paper's pessimistic
    factor. *)
