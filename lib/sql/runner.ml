open Gus_relational
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval

type cell = {
  label : string;
  value : float;
  stddev : float;
  ci95_normal : Interval.t;
  ci95_chebyshev : Interval.t;
}

type group_row = {
  keys : string list;
  group_cells : cell list;
}

type result = {
  cells : cell list;
  groups : group_row list;
  n_sample_tuples : int;
  gus : Gus_core.Gus.t;
  plan : Splan.t;
}

let label_of item =
  match item.Ast.alias with Some a -> a | None -> Ast.agg_label item.Ast.agg

let one = Expr.float 1.0

let cell_of_report ~label ?quantile (estimate, stddev) =
  let safe_interval method_ =
    Interval.make ~method_ ~coverage:0.95 ~estimate ~stddev
  in
  let value =
    match quantile with
    | None -> estimate
    | Some q -> Interval.quantile_bound ~estimate ~stddev q
  in
  { label;
    value;
    stddev;
    ci95_normal = safe_interval Interval.Normal;
    ci95_chebyshev = safe_interval Interval.Chebyshev }

let eval_item ~gus sample item =
  let label = label_of item in
  let rec go ?quantile agg =
    match agg with
    | Ast.Sum e ->
        let r = Sbox.of_relation ~gus ~f:e sample in
        cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev)
    | Ast.Count_star ->
        let r = Sbox.of_relation ~gus ~f:one sample in
        cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev)
    | Ast.Count e ->
        (* COUNT(e) counts non-null rows: e*0 + 1 is 1 when e is a number
           and Null (→ 0 under SUM) when e is Null. *)
        let indicator = Expr.(Bin (Add, Bin (Mul, e, Expr.float 0.0), Expr.float 1.0)) in
        let r = Sbox.of_relation ~gus ~f:indicator sample in
        cell_of_report ~label ?quantile (r.Sbox.estimate, r.Sbox.stddev)
    | Ast.Avg e ->
        let r = Sbox.avg ~gus ~f:e sample in
        cell_of_report ~label ?quantile (r.Sbox.ratio_estimate, r.Sbox.ratio_stddev)
    | Ast.Quantile (inner, q) -> go ~quantile:q inner
  in
  go item.Ast.agg

(* Partition a relation into per-group sub-relations by rendered key
   values, preserving first-seen group order. *)
let partition_groups keys rel =
  let evals = List.map (Expr.bind rel.Relation.schema) keys in
  let groups : (string list, Relation.t) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  Relation.iter
    (fun tup ->
      let k = List.map (fun ev -> Value.to_display (ev tup)) evals in
      let sub =
        match Hashtbl.find_opt groups k with
        | Some r -> r
        | None ->
            let r =
              Relation.derived ~name:"group" rel.Relation.schema
                rel.Relation.lineage_schema
            in
            Hashtbl.add groups k r;
            order := k :: !order;
            r
      in
      Relation.append_tuple sub tup)
    rel;
  List.rev_map (fun k -> (k, Hashtbl.find groups k)) !order

let lint ?config db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile ~self_join_check:false db query in
  (plan, Gus_analysis.Lint.run_db ?config db plan)

let run ?(seed = 42) db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile db query in
  (* Analyze before executing: a plan outside the GUS theory is rejected
     with every diagnostic code at once, before any sampling work runs. *)
  let analysis = Rewrite.analyze_db db plan in
  let gus = analysis.Rewrite.gus in
  let rng = Gus_util.Rng.create seed in
  let sample = Splan.exec db rng plan in
  let cells, groups =
    match query.Ast.group_by with
    | [] -> (List.map (eval_item ~gus sample) query.Ast.items, [])
    | keys ->
        let per_group =
          List.map
            (fun (k, sub) ->
              { keys = k;
                group_cells = List.map (eval_item ~gus sub) query.Ast.items })
            (partition_groups keys sample)
        in
        ([], per_group)
  in
  { cells; groups; n_sample_tuples = Relation.cardinality sample; gus; plan }

let exact_values query exact_rel =
  let eval_f f =
    let ev = Expr.bind_float exact_rel.Relation.schema f in
    Relation.fold (fun acc tup -> acc +. ev tup) 0.0 exact_rel
  in
  let rec value = function
    | Ast.Sum e -> eval_f e
    | Ast.Count_star -> float_of_int (Relation.cardinality exact_rel)
    | Ast.Count e ->
        eval_f Expr.(Bin (Add, Bin (Mul, e, Expr.float 0.0), Expr.float 1.0))
    | Ast.Avg e ->
        let n = Relation.cardinality exact_rel in
        if n = 0 then 0.0 else eval_f e /. float_of_int n
    | Ast.Quantile (inner, _) -> value inner
  in
  List.map (fun item -> (label_of item, value item.Ast.agg)) query.Ast.items

let run_exact db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile db query in
  let exact_rel = Splan.exec_exact db plan in
  exact_values query exact_rel

let run_exact_groups db sql =
  let query = Parser.parse sql in
  let { Planner.plan; _ } = Planner.compile db query in
  let exact_rel = Splan.exec_exact db plan in
  List.map
    (fun (k, sub) -> (k, exact_values query sub))
    (partition_groups query.Ast.group_by exact_rel)

let pp_cell ppf c =
  Format.fprintf ppf
    "%s = %.6g (sd %.4g)@,  95%% normal    %a@,  95%% chebyshev %a@," c.label
    c.value c.stddev Interval.pp c.ci95_normal Interval.pp c.ci95_chebyshev

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "sample tuples: %d@," r.n_sample_tuples;
  List.iter (pp_cell ppf) r.cells;
  List.iter
    (fun g ->
      Format.fprintf ppf "group [%s]:@," (String.concat ", " g.keys);
      List.iter (pp_cell ppf) g.group_cells)
    r.groups;
  Format.fprintf ppf "@]"
