lib/relational/ops.mli: Expr Relation
