(** 64-bit mixing hashes and the pseudo-random functions used by the
    Section-7 subsampler.

    The lineage-keyed subsampler must make the *same* keep/drop decision for
    a base tuple everywhere it appears in the result set (otherwise the
    filter is not a GUS).  The paper's recipe — "pseudo-random functions
    that combine seeds and lineage to provide a [0,1] number" — is realized
    by {!prf_float}. *)

val mix64 : int64 -> int64
(** A strong finalizer (SplitMix64's).  Bijective on 64 bits. *)

val hash_int : seed:int -> int -> int64
val hash_string : seed:int -> string -> int64
val combine : int64 -> int64 -> int64

val prf_float : seed:int -> int -> float
(** [prf_float ~seed id] deterministically maps a row id to a uniform-looking
    number in [0, 1).  Same [(seed, id)] always yields the same value. *)
