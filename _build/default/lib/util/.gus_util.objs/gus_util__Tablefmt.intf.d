lib/util/tablefmt.mli:
