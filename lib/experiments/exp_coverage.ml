module Splan = Gus_core.Splan
module Sampler = Gus_sampling.Sampler
module Sbox = Gus_estimator.Sbox
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
module Tablefmt = Gus_util.Tablefmt
open Gus_relational

(* The failure mode motivating the paper (Section 2): treat the result
   tuples of a sampled join as if they were an independent Bernoulli(a)
   sample of the join — i.e. analyze with a GUS whose cross terms b_l, b_o
   equal b_∅, erasing the correlation induced by shared base tuples.  The
   estimate is still unbiased; the variance (hence the interval) is not. *)
let naive_join_coverage db ~trials ~seed =
  (* Aggressive sampling of orders makes the shared-order clustering the
     dominant variance term - exactly what the naive analysis misses. *)
  let plan = Harness.join2_plan ~p_lineitem:0.5 ~p_orders:0.05 in
  let truth = Sbox.exact db plan ~f:Harness.revenue_f in
  let correct_gus = (Lazy.force (Gus_analysis.Rewrite.analyze_db db plan).Gus_analysis.Rewrite.gus) in
  let naive_gus =
    Gus_core.Gus.bernoulli_over correct_gus.Gus_core.Gus.rels
      correct_gus.Gus_core.Gus.a
  in
  let hits =
    Harness.map_trials_par ~pool:(Gus_util.Pool.default ()) ~trials ~seed
      (fun rng _t ->
        let r = Sbox.of_plan ~gus:naive_gus ~f:Harness.revenue_f db rng plan in
        let ci = Sbox.interval Interval.Normal r in
        Interval.contains ci truth)
  in
  let n_hit = Array.fold_left (fun n h -> if h then n + 1 else n) 0 hits in
  float_of_int n_hit /. float_of_int trials

let run ?(scale = 1.0) ?(trials = 300) () =
  Harness.section "E2" "95% confidence-interval coverage across plan shapes";
  let db = Harness.db_cached ~scale in
  let t =
    Tablefmt.create
      ~headers:[ "plan"; "sampling"; "normal"; "chebyshev"; "nominal" ]
  in
  let run_case label sampling plan =
    let s =
      Harness.trials_par ~pool:(Gus_util.Pool.default ()) ~trials db plan
        ~f:Harness.revenue_f
    in
    Tablefmt.add_row t
      [ label; sampling;
        Printf.sprintf "%.3f" s.Harness.coverage_normal;
        Printf.sprintf "%.3f" s.Harness.coverage_chebyshev; "0.95" ]
  in
  run_case "lineitem" "Bernoulli 5%" (Harness.single_plan ~p:0.05);
  run_case "lineitem" "WOR 5%"
    (Splan.Sample
       ( Sampler.Wor
           (Relation.cardinality (Database.find db "lineitem") / 20),
         Splan.Scan "lineitem" ));
  run_case "lineitem" "block(50) 10%"
    (Splan.Sample
       (Sampler.Block { rows_per_block = 50; p = 0.1 }, Splan.Scan "lineitem"));
  run_case "2-way join" "B(10%) x B(20%)"
    (Harness.join2_plan ~p_lineitem:0.1 ~p_orders:0.2);
  run_case "2-way join" "B(10%) x WOR" (Harness.query1_plan ());
  run_case "3-way join" "B x B x B"
    (Harness.join3_plan ~p_lineitem:0.1 ~p_orders:0.2 ~p_customer:0.5);
  run_case "2-way join" "B(50%) x B(5%), GUS"
    (Harness.join2_plan ~p_lineitem:0.5 ~p_orders:0.05);
  Tablefmt.add_sep t;
  let cov_naive = naive_join_coverage db ~trials ~seed:99 in
  Tablefmt.add_row t
    [ "2-way join"; "naive var. (no correlation)"; Printf.sprintf "%.3f" cov_naive;
      "-"; "0.95" ];
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: GUS plans near 0.95 under the normal interval and \
     ~1.00 under Chebyshev; the baseline that ignores the join-induced \
     correlation (the pre-GUS state of the art for result-tuple analysis) \
     undercovers badly.\n"
