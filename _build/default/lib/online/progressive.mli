(** Progressive refinement: keep enlarging the sample until the confidence
    interval is tight enough.

    Each round samples every base relation with a lineage-keyed Bernoulli
    at a growing rate {e under fixed per-relation seeds}, so round k's
    sample contains round k−1's — a real engine only fetches the delta
    (the same nesting trick as the Section-7 subsampler, run in reverse).
    Every round is an ordinary GUS plan, so its interval needs no new
    theory; the loop stops as soon as the relative 95% width reaches the
    target, or the rate hits 1 (at which point the answer is exact). *)

type round = {
  index : int;
  rate : float;  (** per-relation Bernoulli rate this round *)
  report : Gus_estimator.Sbox.report;
  interval : Gus_stats.Interval.t;
  rel_width : float;  (** 95% width / |estimate|; 0 when exact *)
  met : bool;  (** this round satisfied the target *)
}

val run :
  ?seed:int ->
  ?initial_rate:float ->
  ?growth:float ->
  ?max_rounds:int ->
  Gus_relational.Database.t ->
  plan:Gus_core.Splan.t ->
  f:Gus_relational.Expr.t ->
  target_rel_width:float ->
  round list
(** Defaults: initial rate 1%, growth 2×, at most 12 rounds.  Sampling
    operators already in [plan] are stripped; the last returned round
    either meets the target or has rate 1.  Raises [Invalid_argument] on
    a non-positive target or parameters outside their ranges. *)
