(** Bottom-up abstract interpretation of sampling plans (no data
    access).

    One pass over a {!Gus_core.Splan.t} computes, for every node, a
    {!fact} over the {!Absdom} domains: a cardinality interval (with an
    expected-rows point estimate for the cost model), an interval for
    the first-order inclusion probability [a], the lineage width, the
    GUS-class lattice element, and whether the subtree contains a
    sampler.  The only external input is the base-relation cardinality
    oracle [card] — the same one {!Lint.run} takes. *)

type fact = {
  card : Absdom.Card.t;  (** result-cardinality interval *)
  a : Absdom.Itv.t;  (** first-order inclusion probability interval *)
  width : int;  (** number of lineage slots (base relations) *)
  cls : Absdom.Cls.t;  (** GUS-class lattice element *)
  sampled : bool;  (** does the subtree contain a sampling operator? *)
}

type table = (Diagnostic.path * fact) list
(** Per-node facts keyed by root-to-node path, in pre-order. *)

val analyze : card:(string -> int) -> Gus_core.Splan.t -> table
(** Total on every plan (including ones the linter rejects): abstract
    interpretation never needs the GUS translation to succeed. *)

val root : table -> fact
(** The fact at path [[]]. *)

val find : table -> Diagnostic.path -> fact option
val to_list : table -> (Diagnostic.path * fact) list
val pp_fact : Format.formatter -> fact -> unit
