(** Experiment registry shared by the bench harness and the CLI. *)

type experiment = {
  id : string;  (** "T1" … "E7" *)
  title : string;
  paper_artifact : string;  (** which table/figure of the paper it covers *)
  run : unit -> unit;
  quick : unit -> unit;  (** reduced trials/scale for smoke runs *)
}

val all : experiment list
val find : string -> experiment option
val run_all : ?quick:bool -> unit -> unit
