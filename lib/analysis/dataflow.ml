module Sampler = Gus_sampling.Sampler
module Splan = Gus_core.Splan
module Lineage = Gus_relational.Lineage
module Itv = Absdom.Itv
module Card = Absdom.Card
module Cls = Absdom.Cls

type fact = {
  card : Card.t;
  a : Itv.t;
  width : int;
  cls : Cls.t;
  sampled : bool;
}

type table = (Diagnostic.path * fact) list

let find table path =
  List.find_map (fun (p, f) -> if p = path then Some f else None) table

let root table =
  match find table [] with
  | Some f -> f
  | None -> invalid_arg "Dataflow.root: empty table"

let to_list table = table

(* Inclusion-probability interval contributed by one sampler applied to
   an input with the given fact.  For WOR the probability is n/N where N
   is the input cardinality: interval division against the input's
   cardinality interval (the static resolution behind GUS018 — when the
   input interval is a point, a is a point even for derived inputs). *)
let sampler_a (s : Sampler.t) (input : fact) =
  match s with
  | Sampler.Bernoulli p | Sampler.Hash_bernoulli { p; _ }
  | Sampler.Block { p; _ } ->
      Itv.point p
  | Sampler.Wor n ->
      let n = float_of_int (max n 0) in
      let c = input.card in
      let hi =
        if c.Card.lo <= 0.0 then 1.0 else Float.min 1.0 (n /. c.Card.lo)
      in
      let lo =
        if c.Card.hi = infinity then 0.0
        else if c.Card.hi <= 0.0 then 1.0
        else Float.min 1.0 (n /. c.Card.hi)
      in
      Itv.make (Float.min lo hi) hi
  | Sampler.Wr _ -> Itv.unit

let sampler_cls (s : Sampler.t) (input : fact) =
  let own =
    match s with
    | Sampler.Bernoulli _ | Sampler.Hash_bernoulli _ -> Cls.Ind_bernoulli
    | Sampler.Wor _ | Sampler.Block _ -> Cls.Product_form
    | Sampler.Wr _ -> Cls.General
  in
  (* Sampling an already-sampled or multi-relation derived input leaves
     the product-form factorization (one factor per base relation). *)
  if input.sampled || input.width > 1 then Cls.General
  else Cls.join own input.cls

let analyze ~card plan =
  let out = ref [] in
  let record path fact = out := (List.rev path, fact) :: !out in
  let rec go rpath plan =
    let fact =
      match plan with
      | Splan.Scan name ->
          let width = Array.length (Lineage.schema_of name) in
          { card = Card.exact (card name);
            a = Itv.point 1.0;
            width;
            cls = Cls.Ind_bernoulli;
            sampled = false }
      | Splan.Select (_, q) ->
          let c = go (0 :: rpath) q in
          { c with card = Card.filter c.card }
      | Splan.Project (_, q) ->
          (* Projection preserves cardinality. *)
          go (0 :: rpath) q
      | Splan.Distinct q ->
          (* DISTINCT can only shrink, which [filter] over-approximates. *)
          let c = go (0 :: rpath) q in
          { c with card = Card.filter c.card }
      | Splan.Sample (s, q) ->
          let c = go (0 :: rpath) q in
          let sa = sampler_a s c in
          { card = Card.sample sa c.card;
            a = Itv.mul c.a sa;
            width = c.width;
            cls = sampler_cls s c;
            sampled = true }
      | Splan.Equi_join { left; right; _ } ->
          let l = go (0 :: rpath) left and r = go (1 :: rpath) right in
          { card = Card.equi_join l.card r.card;
            a = Itv.mul l.a r.a;
            width = l.width + r.width;
            cls = Cls.join l.cls r.cls;
            sampled = l.sampled || r.sampled }
      | Splan.Theta_join (_, left, right) | Splan.Cross (left, right) ->
          let l = go (0 :: rpath) left and r = go (1 :: rpath) right in
          let c =
            match plan with
            | Splan.Theta_join _ -> Card.filter (Card.product l.card r.card)
            | _ -> Card.product l.card r.card
          in
          { card = c;
            a = Itv.mul l.a r.a;
            width = l.width + r.width;
            cls = Cls.join l.cls r.cls;
            sampled = l.sampled || r.sampled }
      | Splan.Union_samples (left, right) ->
          let l = go (0 :: rpath) left and r = go (1 :: rpath) right in
          { card = Card.sum l.card r.card;
            a = Itv.union_prob l.a r.a;
            width = l.width;
            cls = Cls.General;
            sampled = l.sampled || r.sampled }
    in
    record rpath fact;
    fact
  in
  ignore (go [] plan);
  List.sort (fun (p, _) (q, _) -> Diagnostic.compare_path p q) !out

let pp_fact ppf f =
  Format.fprintf ppf "card %a, a %a, width %d, class %a%s" Card.pp f.card
    Itv.pp f.a f.width Cls.pp f.cls
    (if f.sampled then ", sampled" else "")
