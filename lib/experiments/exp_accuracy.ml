module Tablefmt = Gus_util.Tablefmt

let run ?(scale = 1.0) ?(trials = 200) () =
  Harness.section "E1"
    "Accuracy vs sampling fraction (Query 1 workload, SUM(revenue))";
  let db = Harness.db_cached ~scale in
  let orders_card =
    Gus_relational.Relation.cardinality (Gus_relational.Database.find db "orders")
  in
  let t =
    Tablefmt.create
      ~headers:
        [ "lineitem %"; "orders WOR"; "bias %"; "mean |rel.err| %";
          "rmse/truth %"; "mean CI width/truth" ]
  in
  let fractions = [ 0.005; 0.01; 0.02; 0.05; 0.10; 0.20 ] in
  List.iter
    (fun p ->
      let wor = max 10 (int_of_float (float_of_int orders_card *. p *. 4.0)) in
      let plan = Harness.query1_plan ~bernoulli:p ~wor () in
      let s =
        Harness.trials_par ~pool:(Gus_util.Pool.default ()) ~trials db plan
          ~f:Harness.revenue_f
      in
      Tablefmt.add_row t
        [ Printf.sprintf "%.1f" (100.0 *. p);
          string_of_int wor;
          Printf.sprintf "%+.2f" s.Harness.bias_pct;
          Printf.sprintf "%.2f" s.Harness.mean_rel_err_pct;
          Printf.sprintf "%.2f" s.Harness.rmse_over_truth_pct;
          Printf.sprintf "%.3f" s.Harness.mean_ci_width_rel ])
    fractions;
  Tablefmt.print t;
  Printf.printf
    "\nexpected shape: bias ~ 0 at every rate; error decreasing roughly as \
     1/sqrt(rate).\n"
