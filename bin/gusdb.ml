(* gusdb — command-line front end to the GUS sampling-algebra library.

   Subcommands:
     gen          generate a synthetic TPC-H-style database and write CSVs
     snapshot     write or inspect a mmap-able binary snapshot of the
                  database (restore via --data FILE or serve `register`)
     query        run a dialect query (with TABLESAMPLE) and print the
                  estimate with confidence intervals, next to ground truth
     plan         show a query's sampling plan, its SOA rewrite trace and
                  the resulting top GUS operator
     serve        long-lived NDJSON serving loop — one session over
                  stdin/stdout or many concurrent sessions over --tcp
                  (register / prepare / execute / batch / stats), with
                  optional --journal flight recording, --slo-* accuracy
                  thresholds, --prom-out Prometheus exposition and
                  Section-8 load shedding under overload
     loadgen      closed-loop load generator for serve --tcp: p50/p99
                  latency, achieved qps and shed fraction
     replay       re-execute a serve journal and assert bit-identical
                  estimates
     experiments  run the paper-reproduction experiments

   Flags shared across subcommands live in Cli_common. *)

open Cmdliner
module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Gus = Gus_core.Gus
module Json = Gus_service.Json
module C = Cli_common
open Gus_relational

let db_of ~scale ~seed = Gus_tpch.Tpch.generate ~seed ~scale ()

(* ---- gen ---- *)

let gen_cmd =
  let out_arg =
    let doc = "Output directory for the CSV files." in
    Arg.(value & opt string "data" & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run scale seed out =
    let db = db_of ~scale ~seed in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun name ->
        let rel = Database.find db name in
        let path = Filename.concat out (name ^ ".csv") in
        Csv.save ~path rel;
        Printf.printf "%s: %d rows -> %s\n" name (Relation.cardinality rel) path)
      (Database.names db)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic TPC-H-style database.")
    Term.(const run $ C.scale_arg $ C.seed_arg $ out_arg)

(* ---- snapshot ---- *)

let snapshot_cmd =
  let out_arg =
    let doc = "Write a binary snapshot of the database to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let info_arg =
    let doc = "Load the snapshot at $(docv) and print its contents instead \
               of writing one." in
    Arg.(value & opt (some string) None & info [ "info" ] ~docv:"FILE" ~doc)
  in
  let print_db db =
    List.iter
      (fun name ->
        let rel = Database.find db name in
        Printf.printf "  %-10s %8d rows  %d columns\n" name
          (Relation.cardinality rel)
          (Schema.arity rel.Relation.schema))
      (Database.names db)
  in
  let run scale data out info_path =
    C.or_fail @@ fun () ->
    match (out, info_path) with
    | None, None ->
        Printf.eprintf
          "gusdb snapshot: either -o FILE (write) or --info FILE (inspect) \
           is required\n";
        exit 124
    | _, Some path ->
        let db = Snapshot.load ~path in
        Printf.printf "%s: format v%d, %d relations, %d rows\n" path
          Snapshot.version
          (List.length (Database.names db))
          (Database.total_rows db);
        print_db db
    | Some path, None ->
        let db = C.db_source ~scale data in
        Snapshot.save ~path db;
        let size = (Unix.stat path).Unix.st_size in
        Printf.printf "wrote %s: %d relations, %d rows, %d bytes\n" path
          (List.length (Database.names db))
          (Database.total_rows db) size;
        print_db db
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Write (or inspect) a versioned binary snapshot of the \
             database.  Restoring a snapshot (query/serve with a snapshot \
             path, or register with source \"snapshot\") memory-maps the \
             column data instead of re-generating or re-parsing it.")
    Term.(const run $ C.scale_arg $ C.data_arg $ out_arg $ info_arg)

(* ---- query ---- *)

let sql_arg =
  let doc = "The query text (the paper's dialect: SELECT aggregates FROM \
             relations with TABLESAMPLE, WHERE conjunctions)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let query_cmd =
  let exact_arg =
    let doc = "Also evaluate the query exactly (no sampling) for comparison." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let explain_arg =
    let doc = "EXPLAIN ANALYZE: execute the plan with per-node profiling \
               and print the tree annotated with wall time, row counts, \
               sampling rates (a, b0) and variance contributions." in
    Arg.(value & flag & info [ "explain-analyze" ] ~doc)
  in
  let run scale seed sql exact explain json data pool_size trace_out
      metrics_out =
   C.or_fail ~json @@ fun () ->
    C.apply_pool_size pool_size;
    let db = C.db_source ~scale data in
    C.with_obs ~trace_out ~metrics_out @@ fun () ->
    let rs =
      Gus_sql.Runner.run_request db
        (Gus_sql.Runner.request ~seed ~exact ~explain sql)
    in
    if json then
      print_endline
        (Json.to_string
           (Json.obj
              [ ("ok", Some (Json.Bool true));
                ( "result",
                  Some (Gus_service.Protocol.result_json rs.Gus_sql.Runner.rs_result)
                );
                ("exact", Gus_service.Protocol.exact_json rs) ]))
    else begin
      (match rs.Gus_sql.Runner.rs_explain with
      | Some ex -> Format.printf "%a@." Gus_sql.Runner.pp_explain ex
      | None ->
          Format.printf "%a@." Gus_sql.Runner.pp_result
            rs.Gus_sql.Runner.rs_result);
      if exact then begin
        Format.printf "@.ground truth (sampling ignored):@.";
        List.iter
          (fun (label, v) -> Format.printf "  %s = %.6g@." label v)
          rs.Gus_sql.Runner.rs_exact;
        List.iter
          (fun (keys, cells) ->
            List.iter
              (fun (label, v) ->
                Format.printf "  [%s] %s = %.6g@." (String.concat ", " keys)
                  label v)
              cells)
          rs.Gus_sql.Runner.rs_exact_groups
      end
    end
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Estimate an aggregate query over samples.")
    Term.(const run $ C.scale_arg $ C.seed_arg $ sql_arg $ exact_arg
          $ explain_arg $ C.json_arg $ C.data_arg $ C.pool_size_arg
          $ C.trace_out_arg $ C.metrics_out_arg)

(* ---- plan ---- *)

let plan_cmd =
  let run scale sql data =
   C.or_fail @@ fun () ->
    let db = C.db_source ~scale data in
    let query = Gus_sql.Parser.parse sql in
    let { Gus_sql.Planner.plan; _ } = Gus_sql.Planner.compile db query in
    Format.printf "sampling plan:@.%a@." Splan.pp_tree plan;
    let analysis = Rewrite.analyze_db db plan in
    Format.printf "SOA rewrite (%d steps):@."
      (List.length analysis.Rewrite.steps);
    List.iter
      (fun (what, g) ->
        Format.printf "  %-40s a = %.6g@." what g.Gus_core.Symalg.a)
      analysis.Rewrite.steps;
    (* Wide plans have no dense materialization: fall back to the
       symbolic sum-of-products rendering. *)
    (match Rewrite.dense analysis with
    | g -> Format.printf "@.top GUS quasi-operator:@.  @[%a@]@." Gus.pp g
    | exception Gus.Incompatible _ ->
        Format.printf "@.top GUS quasi-operator (symbolic):@.  @[%a@]@."
          Gus_core.Symalg.pp analysis.Rewrite.sym);
    Format.printf "@.sample-free skeleton:@.%a@." Splan.pp_tree
      analysis.Rewrite.skeleton
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show the sampling plan, its SOA-equivalence rewrite and top GUS.")
    Term.(const run $ C.scale_arg $ sql_arg $ C.data_arg)

(* ---- lint ---- *)

let lint_cmd =
  let module Lint = Gus_analysis.Lint in
  let module D = Gus_analysis.Diagnostic in
  let sql_opt_arg =
    let doc = "The query text to lint (omit with $(b,--codes))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let small_a_arg =
    let doc = "Warn (GUS010) when the plan's effective sampling fraction is \
               positive but below $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.small_a
         & info [ "small-a" ] ~docv:"A" ~doc)
  in
  let variance_bound_arg =
    let doc = "Hint (GUS015) when the Theorem-1 worst-case relative \
               variance bound reaches $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.variance_bound
         & info [ "variance-bound" ] ~docv:"B" ~doc)
  in
  let cost_budget_arg =
    let doc = "Warn (GUS014) when the predicted coefficient-enumeration \
               cost (live moment passes x estimated groups) exceeds $(docv)." in
    Arg.(value & opt float Lint.default_config.Lint.cost_budget
         & info [ "cost-budget" ] ~docv:"C" ~doc)
  in
  let fix_arg =
    let doc = "Apply every machine-applicable fix attached to the \
               diagnostics (to a fixpoint), print the rewritten plan and \
               re-lint it.  Every fix preserves the skeleton and the \
               estimator's expectation." in
    Arg.(value & flag & info [ "fix" ] ~doc)
  in
  let codes_arg =
    let doc = "List every diagnostic code with its severity, summary and \
               paper citation, then exit." in
    Arg.(value & flag & info [ "codes" ] ~doc)
  in
  let dense_coeffs_arg =
    let doc = "Run the legacy dense coefficient engine (materialize all \
               2^n second-order probabilities) instead of the symbolic \
               sum-of-products algebra.  Output is byte-identical where \
               both engines apply; this flag exists as the comparison \
               baseline and fails on plans past the dense width limit." in
    Arg.(value & flag & info [ "dense-coeffs" ] ~doc)
  in
  let print_codes () =
    List.iter
      (fun code ->
        Printf.printf "%s %-7s %-55s [%s]\n" (D.code_id code)
          (D.severity_label (D.severity_of_code code))
          (D.title code) (D.citation code))
      D.all_codes
  in
  let run scale sql json small_a variance_bound cost_budget codes fix
      dense_coeffs data =
    if codes then print_codes ()
    else
      match sql with
      | None ->
          Printf.eprintf "gusdb lint: a query is required (or use --codes)\n";
          exit 124
      | Some sql ->
          C.or_fail ~json @@ fun () ->
          let db = C.db_source ~scale data in
          let config = { Lint.small_a; variance_bound; cost_budget } in
          let engine = if dense_coeffs then `Dense else `Symbolic in
          let plan, report = Gus_sql.Runner.lint ~config ~engine db sql in
          if json then print_endline (Lint.to_json report)
          else begin
            Format.printf "sampling plan:@.%a@." Lint.pp_annotated_plan
              (plan, report);
            Format.printf "%a" Lint.pp_report report
          end;
          if fix then begin
            let card r =
              Relation.cardinality (Database.find db r)
            in
            let fixed, applied = Lint.apply_fixes ~config ~card plan in
            if applied = [] then Format.printf "@.no applicable fixes.@."
            else begin
              Format.printf "@.applied %d fix(es):@." (List.length applied);
              List.iter
                (fun f ->
                  Format.printf "  %s@." f.Gus_analysis.Fix.summary)
                applied;
              let report' = Lint.run ~config ~card fixed in
              Format.printf "fixed plan:@.%a@." Lint.pp_annotated_plan
                (fixed, report');
              Format.printf "%s@." (Lint.summary report')
            end
          end;
          if Lint.errors report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check a query's sampling plan against the GUS \
             algebra's preconditions (Props 5-9, Section 9) without \
             executing it, reporting every violation, warning and hint at \
             once.")
    Term.(const run $ C.scale_arg $ sql_opt_arg $ C.json_arg $ small_a_arg
          $ variance_bound_arg $ cost_budget_arg $ codes_arg $ fix_arg
          $ dense_coeffs_arg $ C.data_arg)

(* ---- lint-workload ---- *)

let lint_workload_cmd =
  let dir_arg =
    let doc = "Directory holding the SQL corpus ($(b,*.sql) files, \
               recursively)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let dense_coeffs_arg =
    let doc = "Run the legacy dense coefficient engine instead of the \
               symbolic sum-of-products algebra (byte-identical output; \
               comparison baseline)." in
    Arg.(value & flag & info [ "dense-coeffs" ] ~doc)
  in
  let run scale dir dense_coeffs data =
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Printf.eprintf "gusdb lint-workload: no such directory %s\n" dir;
      exit 124
    end;
    C.or_fail ~json:true @@ fun () ->
    let db = C.db_source ~scale data in
    let engine = if dense_coeffs then `Dense else `Symbolic in
    let rep = Gus_service.Workload_lint.run ~engine db dir in
    print_endline (Json.to_string (Gus_service.Workload_lint.to_json rep));
    exit (Gus_service.Workload_lint.exit_code rep)
  in
  Cmd.v
    (Cmd.info "lint-workload"
       ~doc:"Lint every query of a SQL corpus directory into one \
             aggregated JSON report.  Exit codes are a stable CI \
             contract: 0 all clean, 1 at least one error-severity \
             finding or unparsable query, 124 no such directory.")
    Term.(const run $ C.scale_arg $ dir_arg $ dense_coeffs_arg $ C.data_arg)

(* ---- serve ---- *)

let serve_cmd =
  let cache_capacity_arg =
    let doc = "Capacity of the response LRU cache (entries)." in
    Arg.(value & opt int 128 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc = "Record every register/execute/batch item to $(docv) as \
               NDJSON (the flight-recorder journal `gusdb replay` \
               re-executes and verifies bit-identically)." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let journal_capacity_arg =
    let doc = "In-memory journal ring capacity (events); older events \
               are overwritten (and counted) once full." in
    Arg.(value & opt int 4096 & info [ "journal-capacity" ] ~docv:"N" ~doc)
  in
  let slo_rel_ci_arg =
    let doc = "Accuracy SLO: flag executions whose relative 95% CI \
               half-width exceeds $(docv) (journal $(b,breach:true), \
               $(b,slo.breaches.rel_ci) counter, rate-limited stderr log)." in
    Arg.(value & opt (some float) None
         & info [ "slo-rel-ci" ] ~docv:"FRACTION" ~doc)
  in
  let slo_p99_ms_arg =
    let doc = "Latency SLO: flag executions slower than $(docv) \
               milliseconds.  The threshold is the p99 objective — if \
               more than 1% of executions breach it, the SLO is missed \
               (compare $(b,slo.breaches.latency) against \
               $(b,serve.requests.execute))." in
    Arg.(value & opt (some float) None & info [ "slo-p99-ms" ] ~docv:"MS" ~doc)
  in
  let prom_out_arg =
    let doc = "Write the Prometheus text exposition of the metrics \
               registry to $(docv) (atomic rename), refreshed at most \
               once per second after a response and once at EOF — point \
               a node_exporter textfile collector at it." in
    Arg.(value & opt (some string) None & info [ "prom-out" ] ~docv:"FILE" ~doc)
  in
  let run cache_capacity journal_path journal_capacity slo_rel_ci slo_p99_ms
      prom_out tcp host port port_file max_inflight session_inflight
      shed_start force_shed pool_size trace_out metrics_out =
    C.or_fail @@ fun () ->
    C.apply_pool_size pool_size;
    C.with_obs ~trace_out ~metrics_out @@ fun () ->
    (* The stats op reports the metrics snapshot (cache.hits & friends),
       so collection is always on in serve mode — --metrics-out merely
       adds the file dump at EOF. *)
    Gus_obs.Metrics.set_enabled true;
    let sink = Option.map open_out journal_path in
    let journal =
      Option.map
        (fun sink ->
          Gus_obs.Journal.create ~capacity:journal_capacity ~sink ())
        sink
    in
    let slo =
      { Gus_obs.Journal.max_rel_ci = slo_rel_ci; max_latency_ms = slo_p99_ms }
    in
    let on_breach =
      if slo = Gus_obs.Journal.no_slo then None
      else Some (fun line -> Printf.eprintf "gusdb: %s\n%!" line)
    in
    let engine =
      Gus_service.Engine.create ~cache_capacity
        ~pool:(Gus_util.Pool.default ()) ?journal ~slo ?on_breach ()
    in
    (* Admission control is opt-in on stdio — a plain `gusdb serve`
       session must answer deterministically (the CI replay gate
       byte-compares two runs), and shed decisions depend on wall-clock
       load.  TCP mode always has the in-flight cap; shedding still
       needs --shed-start, --slo-p99-ms pressure, or --force-shed. *)
    let admission =
      if tcp || shed_start <> None || force_shed <> None then
        Some
          (Gus_service.Admission.create ~max_inflight ~session_inflight
             ?shed_start ?slo_p99_ms ?fixed_overload:force_shed ())
      else None
    in
    let after =
      match prom_out with
      | None -> fun () -> ()
      | Some path ->
          let last = ref (Gus_obs.Trace.now_ns ()) in
          fun () ->
            let now = Gus_obs.Trace.now_ns () in
            if now - !last >= 1_000_000_000 then begin
              last := now;
              Gus_obs.Promexp.write_file path
            end
    in
    if tcp then begin
      let server =
        Gus_service.Server.start ~host ~port ?admission ~after engine
      in
      let bound = Gus_service.Server.port server in
      (match port_file with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Printf.fprintf oc "%d\n" bound;
          close_out oc);
      Printf.printf "listening on %s:%d\n%!" host bound;
      Gus_service.Server.wait server
    end
    else
      Gus_service.Session.run ~after
        (Gus_service.Session.create ?admission engine)
        stdin stdout;
    Option.iter Gus_obs.Promexp.write_file prom_out;
    Option.iter close_out sink
  in
  let tcp_arg =
    let doc = "Serve many concurrent NDJSON sessions over TCP instead of \
               one over stdin/stdout.  Each connection gets its own \
               prepared-handle namespace; all sessions share the \
               catalog, cache and journal." in
    Arg.(value & flag & info [ "tcp" ] ~doc)
  in
  let host_arg =
    let doc = "Bind address for $(b,--tcp)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "TCP port for $(b,--tcp); 0 picks an ephemeral port \
               (printed on stdout, and written to $(b,--port-file))." in
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let port_file_arg =
    let doc = "Write the bound TCP port to $(docv) once listening — \
               scripts wait on the file instead of parsing stdout." in
    Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"FILE" ~doc)
  in
  let max_inflight_arg =
    let doc = "Hard cap on requests in flight across all sessions; \
               beyond it requests are rejected with the \
               $(b,overloaded) error." in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let session_inflight_arg =
    let doc = "Per-connection in-flight bound (the reader stops \
               consuming the socket beyond it, so backpressure reaches \
               the client through TCP)." in
    Arg.(value & opt int 8 & info [ "session-inflight" ] ~docv:"N" ~doc)
  in
  let shed_start_arg =
    let doc = "In-flight depth at which load shedding starts: past it, \
               execute requests are answered from degraded sampling \
               rates chosen by the paper's Section-8 rate selection \
               (minimum variance under the reduced budget) instead of \
               queueing.  Responses gain $(b,shed:true) and an \
               honestly wider CI." in
    Arg.(value & opt (some int) None & info [ "shed-start" ] ~docv:"N" ~doc)
  in
  let force_shed_arg =
    let doc = "Pin the overload factor to $(docv) (> 1 sheds every \
               execute) — deterministic shedding for tests and demos." in
    Arg.(value & opt (some float) None
         & info [ "force-shed" ] ~docv:"FACTOR" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve prepared queries over a line-oriented NDJSON protocol — \
             one session on stdin/stdout, or many concurrent sessions over \
             TCP with $(b,--tcp): register datasets, prepare once per \
             session, execute many times with per-call seeds and sampling \
             rates, batch across the domain pool, inspect cache/catalog \
             stats.  Under overload ($(b,--shed-start), $(b,--slo-p99-ms)) \
             the admission controller shed-samples instead of queueing, \
             using the paper's Section-8 rate selection.  With \
             $(b,--journal) every execution (shed ones included) is \
             flight-recorded bit-reproducibly; $(b,--prom-out) exports \
             Prometheus text format.")
    Term.(const run $ cache_capacity_arg $ journal_arg $ journal_capacity_arg
          $ slo_rel_ci_arg $ slo_p99_ms_arg $ prom_out_arg $ tcp_arg
          $ host_arg $ port_arg $ port_file_arg $ max_inflight_arg
          $ session_inflight_arg $ shed_start_arg $ force_shed_arg
          $ C.pool_size_arg $ C.trace_out_arg $ C.metrics_out_arg)

(* ---- loadgen ---- *)

let loadgen_cmd =
  let clients_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let qps_arg =
    let doc = "Aggregate target request rate (closed loop: clients never \
               pipeline, so offered load saturates at server speed)." in
    Arg.(value & opt float 200.0 & info [ "qps" ] ~docv:"M" ~doc)
  in
  let duration_arg =
    let doc = "Run length in seconds." in
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let connect_arg =
    let doc = "Drive an already-running `gusdb serve --tcp` at \
               $(docv) (HOST:PORT) instead of spawning an in-process \
               server." in
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let sql_arg =
    let doc = "Query each client prepares and executes." in
    Arg.(value
         & opt string
             "SELECT SUM(l_extendedprice) AS s FROM lineitem TABLESAMPLE (20 \
              PERCENT)"
         & info [ "sql" ] ~docv:"SQL" ~doc)
  in
  let loadgen_scale_arg =
    let doc = "Scale of the TPC-H-style dataset the in-process server \
               registers." in
    Arg.(value & opt float 0.01 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)
  in
  let max_inflight_arg =
    let doc = "In-process server: hard in-flight cap." in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let session_inflight_arg =
    let doc = "In-process server: per-connection in-flight bound." in
    Arg.(value & opt int 8 & info [ "session-inflight" ] ~docv:"N" ~doc)
  in
  let shed_start_arg =
    let doc = "In-process server: in-flight depth where shedding starts." in
    Arg.(value & opt (some int) None & info [ "shed-start" ] ~docv:"N" ~doc)
  in
  let slo_p99_ms_arg =
    let doc = "In-process server: p99 latency target driving \
               latency-based shedding; also the SLO the summary is \
               judged against." in
    Arg.(value & opt (some float) None & info [ "slo-p99-ms" ] ~docv:"MS" ~doc)
  in
  let force_shed_arg =
    let doc = "In-process server: pin the overload factor (deterministic \
               shedding)." in
    Arg.(value & opt (some float) None
         & info [ "force-shed" ] ~docv:"FACTOR" ~doc)
  in
  let bench_out_arg =
    let doc = "Merge a $(b,service/loadgen-*) row (p50/p99 latency, \
               achieved qps, shed fraction) into the \
               BENCH_moments.json-format file at $(docv)." in
    Arg.(value & opt (some string) None & info [ "bench-out" ] ~docv:"FILE" ~doc)
  in
  let run clients qps duration connect sql scale max_inflight session_inflight
      shed_start slo_p99_ms force_shed bench_out json =
    C.or_fail ~json @@ fun () ->
    let module Service = Gus_service in
    let host, port, server =
      match connect with
      | Some spec -> (
          match String.rindex_opt spec ':' with
          | Some i ->
              let host = String.sub spec 0 i in
              let port =
                int_of_string (String.sub spec (i + 1) (String.length spec - i - 1))
              in
              (host, port, None)
          | None ->
              raise
                (Invalid_argument
                   (Printf.sprintf "--connect %S: expected HOST:PORT" spec)))
      | None ->
          Gus_obs.Metrics.set_enabled true;
          let engine =
            Service.Engine.create ~cache_capacity:256
              ~pool:(Gus_util.Pool.default ()) ()
          in
          let admission =
            Service.Admission.create ~max_inflight ~session_inflight
              ?shed_start ?slo_p99_ms ?fixed_overload:force_shed ()
          in
          let server = Service.Server.start ~port:0 ~admission engine in
          ("127.0.0.1", Service.Server.port server, Some server)
    in
    let line j = Json.to_string (Json.Obj j) in
    let setup =
      [ line
          [ ("op", Json.Str "register");
            ("name", Json.Str "bench");
            ("scale", Json.Num scale) ] ]
    in
    let client_setup =
      [ line
          [ ("op", Json.Str "prepare");
            ("dataset", Json.Str "bench");
            ("sql", Json.Str sql);
            ("name", Json.Str "lq") ] ]
    in
    (* Distinct seeds per request: identical seeds would answer from the
       response cache and generate no load at all. *)
    let request ~client ~seq =
      line
        [ ("op", Json.Str "execute");
          ("handle", Json.Str "lq");
          ("seed", Json.Num (float_of_int (1 + client + (clients * seq)))) ]
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter Service.Server.stop server)
        (fun () ->
          Service.Loadgen.run ~host ~port ~clients ~qps ~duration_s:duration
            ~setup ~client_setup ~request ())
    in
    match result with
    | Error msg -> failwith msg
    | Ok s ->
        let open Service.Loadgen in
        if json then
          print_endline
            (Json.to_string
               (Json.obj
                  [ ("ok", Some (Json.Bool (s.errors = 0)));
                    ("op", Some (Json.Str "loadgen"));
                    ("clients", Some (Json.Num (float_of_int s.clients)));
                    ("target_qps", Some (Json.Num s.target_qps));
                    ("duration_s", Some (Json.Num s.duration_s));
                    ("sent", Some (Json.Num (float_of_int s.sent)));
                    ("ok_responses", Some (Json.Num (float_of_int s.ok)));
                    ("errors", Some (Json.Num (float_of_int s.errors)));
                    ("shed", Some (Json.Num (float_of_int s.shed)));
                    ("rejected", Some (Json.Num (float_of_int s.rejected)));
                    ("p50_ms", Some (Json.Num s.p50_ms));
                    ("p99_ms", Some (Json.Num s.p99_ms));
                    ("achieved_qps", Some (Json.Num s.achieved_qps));
                    ("shed_fraction", Some (Json.Num s.shed_fraction)) ]))
        else begin
          Printf.printf
            "loadgen: %d client(s), target %g req/s for %g s against %s:%d\n"
            s.clients s.target_qps s.duration_s host port;
          Printf.printf
            "sent %d  ok %d  shed %d (%.1f%%)  rejected %d  errors %d\n"
            s.sent s.ok s.shed (100.0 *. s.shed_fraction) s.rejected s.errors;
          Printf.printf
            "latency p50 %.2f ms  p99 %.2f ms  achieved %.1f req/s\n"
            s.p50_ms s.p99_ms s.achieved_qps;
          match slo_p99_ms with
          | Some slo when s.p99_ms > slo ->
              Printf.printf "p99 SLO (%g ms) MISSED\n" slo
          | Some slo -> Printf.printf "p99 SLO (%g ms) met\n" slo
          | None -> ()
        end;
        (match bench_out with
        | None -> ()
        | Some path ->
            let name =
              Printf.sprintf "service/loadgen-%dx%g" s.clients s.target_qps
            in
            merge_bench_row ~path ~name s);
        if s.errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator for `gusdb serve --tcp`: N client \
             connections pace toward an aggregate request rate, each with \
             its own session-scoped prepared handle, and report p50/p99 \
             latency, achieved throughput and the shed fraction.  Spawns \
             an in-process server (with admission-control flags) unless \
             $(b,--connect) points at a running one.  Exits non-zero on \
             any protocol error.")
    Term.(const run $ clients_arg $ qps_arg $ duration_arg $ connect_arg
          $ sql_arg $ loadgen_scale_arg $ max_inflight_arg
          $ session_inflight_arg $ shed_start_arg $ slo_p99_ms_arg
          $ force_shed_arg $ bench_out_arg $ C.json_arg)

(* ---- replay ---- *)

let replay_cmd =
  let journal_file_arg =
    let doc = "NDJSON journal written by `gusdb serve --journal`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL" ~doc)
  in
  let float_str v =
    if Float.is_nan v then "nan"
    else if v = Float.infinity then "inf"
    else if v = Float.neg_infinity then "-inf"
    else Json.number_to_string v
  in
  let run journal json =
    let module Replay = Gus_service.Replay in
    (match Replay.run_file journal with
    | exception Replay.Corrupt { line; message } ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [ ("ok", Json.Bool false);
                    ( "error",
                      Json.Obj
                        [ ("code", Json.Str "corrupt_journal");
                          ("line", Json.Num (float_of_int line));
                          ("message", Json.Str message) ] ) ]));
        Printf.eprintf "gusdb replay: %s:%d: corrupted journal line: %s\n"
          journal line message;
        exit 1
    | exception e -> C.or_fail ~json (fun () -> raise e)
    | report ->
        let mismatch_json (m : Replay.mismatch) =
          Json.Obj
            [ ("line", Json.Num (float_of_int m.Replay.mm_line));
              ("sql", Json.Str m.Replay.mm_sql);
              ("field", Json.Str m.Replay.mm_field);
              ("journaled", Json.Str (float_str m.Replay.mm_journaled));
              ("replayed", Json.Str (float_str m.Replay.mm_replayed)) ]
        in
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  ([ ("ok", Json.Bool (report.Replay.rp_mismatches = []));
                     ("op", Json.Str "replay");
                     ( "registers",
                       Json.Num (float_of_int report.Replay.rp_registers) );
                     ( "skipped",
                       Json.Num (float_of_int report.Replay.rp_skipped) );
                     ( "executions",
                       Json.Num (float_of_int report.Replay.rp_executions) );
                     ( "matched",
                       Json.Num (float_of_int report.Replay.rp_matched) ) ]
                  @ (if report.Replay.rp_sheds > 0 then
                       [ ( "sheds",
                           Json.Num (float_of_int report.Replay.rp_sheds) ) ]
                     else [])
                  @ [ ( "mismatches",
                        Json.List
                          (List.map mismatch_json report.Replay.rp_mismatches)
                      ) ])))
        else begin
          Printf.printf
            "replayed %d execution(s) over %d registered dataset(s)%s\n"
            report.Replay.rp_executions report.Replay.rp_registers
            (if report.Replay.rp_skipped > 0 then
               Printf.sprintf " (%d register event(s) skipped)"
                 report.Replay.rp_skipped
             else "");
          if report.Replay.rp_sheds > 0 then
            Printf.printf "%d shed decision(s) noted (degraded rates \
                           replayed via their exec events)\n"
              report.Replay.rp_sheds;
          if report.Replay.rp_mismatches = [] then
            Printf.printf "all %d estimate(s) bit-identical\n"
              report.Replay.rp_matched
          else
            List.iter
              (fun (m : Replay.mismatch) ->
                Printf.printf
                  "MISMATCH line %d [%s]: journaled %s, replayed %s  (%s)\n"
                  m.Replay.mm_line m.Replay.mm_field
                  (float_str m.Replay.mm_journaled)
                  (float_str m.Replay.mm_replayed)
                  m.Replay.mm_sql)
              report.Replay.rp_mismatches
        end;
        if report.Replay.rp_mismatches <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a serve journal and assert bit-identical \
             estimates.  Rebuilds each journaled dataset from its \
             recorded source, re-runs every execution with its journaled \
             seed/rates/explain/exact, and compares estimate, stddev and \
             variance bit for bit.  Exit 1 on any mismatch or a \
             corrupted journal line.")
    Term.(const run $ journal_file_arg $ C.json_arg)

(* ---- repl ---- *)

let repl_cmd =
  let run scale seed =
    let db = db_of ~scale ~seed:C.generation_seed in
    Printf.printf
      "gusdb repl - %d relations, %d rows (scale %g).\n\
       Terminate queries with ';'.  Commands: \\q quit, \\plan <sql>;, \
       \\exact <sql>;, \\tables.\n"
      (List.length (Database.names db))
      (Database.total_rows db) scale;
    let seed = ref seed in
    let buf = Buffer.create 256 in
    let try_read () = try Some (input_line stdin) with End_of_file -> None in
    let rec loop () =
      if Buffer.length buf = 0 then print_string "gus> " else print_string "...> ";
      flush stdout;
      match try_read () with
      | None -> print_newline ()
      | Some line ->
          let line = String.trim line in
          if line = "\\q" then print_endline "bye."
          else if line = "\\tables" then begin
            List.iter
              (fun n ->
                Printf.printf "  %-10s %7d rows  %s\n" n
                  (Relation.cardinality (Database.find db n))
                  (Format.asprintf "%a" Schema.pp (Database.find db n).Relation.schema))
              (Database.names db);
            loop ()
          end
          else begin
            Buffer.add_string buf line;
            Buffer.add_char buf ' ';
            if String.length line > 0 && String.contains line ';' then begin
              let text = String.trim (Buffer.contents buf) in
              Buffer.clear buf;
              incr seed;
              (try
                 if String.length text >= 5 && String.sub text 0 5 = "\\plan" then begin
                   let sql = String.sub text 5 (String.length text - 5) in
                   let query = Gus_sql.Parser.parse sql in
                   let { Gus_sql.Planner.plan; _ } = Gus_sql.Planner.compile db query in
                   Format.printf "%a" Splan.pp_tree plan;
                   let analysis = Rewrite.analyze_db db plan in
                   Format.printf "@[%a@]@." Gus.pp (Lazy.force analysis.Rewrite.gus)
                 end
                 else if String.length text >= 6 && String.sub text 0 6 = "\\exact"
                 then begin
                   let sql = String.sub text 6 (String.length text - 6) in
                   List.iter
                     (fun (label, v) -> Format.printf "  %s = %.6g@." label v)
                     (Gus_sql.Runner.run_exact db sql)
                 end
                 else
                   Format.printf "%a@."
                     Gus_sql.Runner.pp_result
                     (Gus_sql.Runner.run ~seed:!seed db text)
               with
              | Gus_sql.Parser.Error msg | Gus_sql.Planner.Error msg ->
                  Printf.printf "error: %s\n" msg
              | Gus_sql.Lexer.Error { message; _ } ->
                  Printf.printf "lexical error: %s\n" message
              | Rewrite.Unsupported msg -> Printf.printf "unsupported: %s\n" msg
              | Value.Type_error msg -> Printf.printf "type error: %s\n" msg
              | Schema.Unknown_column c -> Printf.printf "unknown column: %s\n" c);
              loop ()
            end
            else loop ()
          end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop over a generated database.")
    Term.(const run $ C.scale_arg $ C.seed_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let id_arg =
    let doc = "Run a single experiment (T1..T4, E1..E7); default: all." in
    Arg.(value & opt (some string) None & info [ "e"; "experiment" ] ~docv:"ID" ~doc)
  in
  let full_arg =
    let doc = "Full-size runs (more trials, larger scale)." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let list_arg =
    let doc = "List the available experiments." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let progress_arg =
    let doc = "Print live trial progress (completed/total, elapsed, ETA) \
               to stderr during Monte-Carlo loops." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let run id full list pool_size progress trace_out metrics_out =
    let module R = Gus_experiments.Registry in
    C.apply_pool_size pool_size;
    Gus_experiments.Harness.set_progress progress;
    if list then
      List.iter
        (fun e ->
          Printf.printf "%-4s %-50s [%s]\n" e.R.id e.R.title e.R.paper_artifact)
        R.all
    else
      C.with_obs ~trace_out ~metrics_out @@ fun () ->
      match id with
      | None -> R.run_all ~quick:(not full) ()
      | Some id -> begin
          match R.find id with
          | Some e -> if full then e.R.run () else e.R.quick ()
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              exit 1
        end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments.")
    Term.(const run $ id_arg $ full_arg $ list_arg $ C.pool_size_arg
          $ progress_arg $ C.trace_out_arg $ C.metrics_out_arg)

let () =
  let doc = "aggregate estimation over sampled queries (GUS sampling algebra)" in
  let info = Cmd.info "gusdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; snapshot_cmd; query_cmd; plan_cmd; lint_cmd;
            lint_workload_cmd; serve_cmd; loadgen_cmd; replay_cmd; repl_cmd;
            experiments_cmd ]))
