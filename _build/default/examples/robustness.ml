(* "Database as a sample" (paper Section 8): treat the stored relations as
   a 99% Bernoulli sample of an idealized complete database, and read the
   Theorem-1 variance as a robustness score: how far could this answer move
   if 1% of the tuples were randomly missing?

   A report aggregate dominated by a few heavy tuples is fragile; a uniform
   one is not - even when their totals look equally authoritative.

   Run with:  dune exec examples/robustness.exe *)

module Splan = Gus_core.Splan
module Gus = Gus_core.Gus
module Moments = Gus_estimator.Moments
open Gus_relational

let robustness db plan ~f ~loss =
  let full = Splan.exec_exact db plan in
  let keep = 1.0 -. loss in
  let gus =
    Array.fold_left
      (fun acc r ->
        let g = Gus.bernoulli ~rel:r keep in
        match acc with None -> Some g | Some a -> Some (Gus.join a g))
      None full.Relation.lineage_schema
    |> Option.get
  in
  let y = Moments.of_relation ~f full in
  let eval = Expr.bind_float full.Relation.schema f in
  let total = Relation.fold (fun acc tup -> acc +. eval tup) 0.0 full in
  let sd = sqrt (Float.max 0.0 (Gus.variance gus ~y)) in
  (total, sd /. Float.abs total)

let () =
  let skewed =
    { Gus_tpch.Tpch.default_config with part_skew = 1.3; price_skew = 1.1 }
  in
  let db = Gus_tpch.Tpch.generate ~config:skewed ~seed:5 ~scale:0.5 () in
  let join =
    Splan.equi_join (Splan.scan "lineitem") (Splan.scan "orders")
      ~on:("l_orderkey", "o_orderkey")
  in
  let report name f =
    let total, cv = robustness db join ~f ~loss:0.01 in
    Printf.printf "%-28s total = %12.4g   1%%-loss CV = %.4f%%%s\n" name total
      (100.0 *. cv)
      (if cv > 0.005 then "   <- fragile" else "")
  in
  Printf.printf "robustness of report aggregates to losing 1%% of tuples:\n\n";
  report "SUM(revenue) (heavy tail)" Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount"));
  report "SUM(quantity) (uniform)" (Expr.col "l_quantity");
  report "COUNT(*)" (Expr.float 1.0);
  Printf.printf
    "\nA large coefficient of variation flags a query whose answer depends \
     on a few heavy tuples: its results should not be trusted under data \
     loss or late-arriving data.\n"
