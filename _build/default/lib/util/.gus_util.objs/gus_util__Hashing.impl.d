lib/util/hashing.ml: Char Int64 String
