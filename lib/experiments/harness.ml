module Splan = Gus_core.Splan
module Rewrite = Gus_analysis.Rewrite
module Sbox = Gus_estimator.Sbox
module Sampler = Gus_sampling.Sampler
module Interval = Gus_stats.Interval
module Summary = Gus_stats.Summary
open Gus_relational

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

(* ---- progress reporting -------------------------------------------- *)

let m_trials_completed = Gus_obs.Metrics.counter "harness.trials_completed"

let progress_enabled = ref false
let set_progress b = progress_enabled := b

type progress = {
  p_total : int;
  p_start_ns : int;
  p_done : int Atomic.t;
  p_mu : Mutex.t;
  mutable p_last_ns : int;  (* last stderr update; guarded by [p_mu] *)
}

let progress_start total =
  if !progress_enabled && total > 0 then
    Some
      { p_total = total;
        p_start_ns = Gus_obs.Trace.now_ns ();
        p_done = Atomic.make 0;
        p_mu = Mutex.create ();
        p_last_ns = 0 }
  else None

(* Called once per completed trial, possibly from a pool lane.  The
   metric always counts (subject to the Metrics flag); the stderr line is
   rate-limited to ~5 updates/s so heavy parallel runs don't serialize on
   terminal writes. *)
let progress_tick prog =
  Gus_obs.Metrics.incr m_trials_completed;
  match prog with
  | None -> ()
  | Some p ->
      let done_ = 1 + Atomic.fetch_and_add p.p_done 1 in
      let now = Gus_obs.Trace.now_ns () in
      Mutex.lock p.p_mu;
      let due = now - p.p_last_ns >= 200_000_000 || done_ = p.p_total in
      if due then p.p_last_ns <- now;
      Mutex.unlock p.p_mu;
      if due then begin
        let elapsed = float_of_int (now - p.p_start_ns) /. 1e9 in
        let eta =
          elapsed *. float_of_int (p.p_total - done_) /. float_of_int done_
        in
        Printf.eprintf "\r  trials %d/%d (%d%%) elapsed %.1fs eta %.1fs%!"
          done_ p.p_total
          (100 * done_ / p.p_total)
          elapsed eta
      end

let progress_finish = function
  | None -> ()
  | Some _ -> prerr_newline ()

let fcell = Gus_util.Tablefmt.float_cell ~digits:3

let query1_f = Expr.(col "l_discount" * (float 1.0 - col "l_tax"))
let revenue_f = Expr.(col "l_extendedprice" * (float 1.0 - col "l_discount"))

let price_filter = Expr.(col "l_extendedprice" > float 100.0)

let query1_plan ?(bernoulli = 0.1) ?(wor = 1000) () =
  Splan.Select
    ( price_filter,
      Splan.Equi_join
        { left = Splan.Sample (Sampler.Bernoulli bernoulli, Splan.Scan "lineitem");
          right = Splan.Sample (Sampler.Wor wor, Splan.Scan "orders");
          left_key = Expr.col "l_orderkey";
          right_key = Expr.col "o_orderkey" } )

let join2_plan ~p_lineitem ~p_orders =
  Splan.Equi_join
    { left = Splan.Sample (Sampler.Bernoulli p_lineitem, Splan.Scan "lineitem");
      right = Splan.Sample (Sampler.Bernoulli p_orders, Splan.Scan "orders");
      left_key = Expr.col "l_orderkey";
      right_key = Expr.col "o_orderkey" }

let join3_plan ~p_lineitem ~p_orders ~p_customer =
  Splan.Equi_join
    { left = join2_plan ~p_lineitem ~p_orders;
      right = Splan.Sample (Sampler.Bernoulli p_customer, Splan.Scan "customer");
      left_key = Expr.col "o_custkey";
      right_key = Expr.col "c_custkey" }

let single_plan ~p =
  Splan.Sample (Sampler.Bernoulli p, Splan.Scan "lineitem")

type trial_stats = {
  trials : int;
  truth : float;
  mean_estimate : float;
  bias_pct : float;
  mean_rel_err_pct : float;
  rmse_over_truth_pct : float;
  mc_variance : float;
  mean_est_variance : float;
  coverage_normal : float;
  coverage_chebyshev : float;
  mean_ci_width_rel : float;
}

(* Per-trial accuracy accumulator.  Both the sequential and the pooled
   trial loops run the same per-trial body into one of these; a parallel
   run keeps one per fixed trial block and reduces them with
   {!Summary.merge} in block order. *)
type trial_acc = {
  estimates : Summary.t;
  est_var : Summary.t;
  rel_err : Summary.t;
  ci_width : Summary.t;
  mutable hits_normal : int;
  mutable hits_cheby : int;
}

let trial_acc_create () =
  { estimates = Summary.create ();
    est_var = Summary.create ();
    rel_err = Summary.create ();
    ci_width = Summary.create ();
    hits_normal = 0;
    hits_cheby = 0 }

let trial_acc_merge a b =
  { estimates = Summary.merge a.estimates b.estimates;
    est_var = Summary.merge a.est_var b.est_var;
    rel_err = Summary.merge a.rel_err b.rel_err;
    ci_width = Summary.merge a.ci_width b.ci_width;
    hits_normal = a.hits_normal + b.hits_normal;
    hits_cheby = a.hits_cheby + b.hits_cheby }

(* One Monte-Carlo trial: stream the plan into an estimate (no result
   relation materialized) and score it against the truth. *)
let one_trial ~gus ~truth db plan ~f acc rng =
  let r = Sbox.of_plan ~gus ~f db rng plan in
  Summary.add acc.estimates r.Sbox.estimate;
  Summary.add acc.est_var r.Sbox.variance;
  Summary.add acc.rel_err (Summary.relative_error ~truth r.Sbox.estimate);
  let ci_n = Sbox.interval Interval.Normal r in
  let ci_c = Sbox.interval Interval.Chebyshev r in
  Summary.add acc.ci_width (Interval.width ci_n /. Float.abs truth);
  if Interval.contains ci_n truth then acc.hits_normal <- acc.hits_normal + 1;
  if Interval.contains ci_c truth then acc.hits_cheby <- acc.hits_cheby + 1

let stats_of_acc ~trials ~truth acc =
  let tf = float_of_int trials in
  { trials;
    truth;
    mean_estimate = Summary.mean acc.estimates;
    bias_pct = 100.0 *. (Summary.mean acc.estimates -. truth) /. truth;
    mean_rel_err_pct = 100.0 *. Summary.mean acc.rel_err;
    rmse_over_truth_pct =
      (let mc = Summary.variance_population acc.estimates in
       (* RMSE via MC variance + bias. *)
       let bias = Summary.mean acc.estimates -. truth in
       100.0 *. sqrt (mc +. (bias *. bias)) /. Float.abs truth);
    mc_variance = Summary.variance acc.estimates;
    mean_est_variance = Summary.mean acc.est_var;
    coverage_normal = float_of_int acc.hits_normal /. tf;
    coverage_chebyshev = float_of_int acc.hits_cheby /. tf;
    mean_ci_width_rel = Summary.mean acc.ci_width }

let trials ?(trials = 200) ?(seed = 1) db plan ~f =
  let truth = Sbox.exact db plan ~f in
  let analysis = Rewrite.analyze_db db plan in
  let gus = (Lazy.force analysis.Rewrite.gus) in
  let acc = trial_acc_create () in
  let prog = progress_start trials in
  for t = 1 to trials do
    let rng = Gus_util.Rng.create (seed + (7919 * t)) in
    one_trial ~gus ~truth db plan ~f acc rng;
    progress_tick prog
  done;
  progress_finish prog;
  stats_of_acc ~trials ~truth acc

(* Trials per reduction block of {!trials_par}.  The grid is fixed —
   block [b] always owns trials [8b, 8b+8) and blocks always reduce in
   index order — so the result is bit-identical for every pool size. *)
let trials_per_block = 8

let trials_par ?pool ?(trials = 200) ?(seed = 1) db plan ~f =
  let truth = Sbox.exact db plan ~f in
  let analysis = Rewrite.analyze_db db plan in
  let gus = (Lazy.force analysis.Rewrite.gus) in
  let ntr = Stdlib.max 0 trials in
  let master = Gus_util.Rng.create seed in
  let nblocks = Stdlib.max 1 ((ntr + trials_per_block - 1) / trials_per_block) in
  let blocks = Array.init nblocks (fun _ -> trial_acc_create ()) in
  let prog = progress_start ntr in
  let run_block b =
    let acc = blocks.(b) in
    let lo = b * trials_per_block and hi = min ntr ((b + 1) * trials_per_block) in
    for t = lo to hi - 1 do
      (* The t-th child stream of the master seed: a pure function of
         (seed, t), so a trial draws the same sample whichever lane runs
         it. *)
      one_trial ~gus ~truth db plan ~f acc (Gus_util.Rng.derive master t);
      progress_tick prog
    done
  in
  let module Pool = Gus_util.Pool in
  (match pool with
  | Some p when Pool.is_live p && Pool.size p > 1 && nblocks > 1 ->
      Pool.run_chunks p ~lo:0 ~hi:nblocks (fun blo bhi ->
          for b = blo to bhi - 1 do
            run_block b
          done)
  | _ ->
      for b = 0 to nblocks - 1 do
        run_block b
      done);
  progress_finish prog;
  let acc = ref blocks.(0) in
  for b = 1 to nblocks - 1 do
    acc := trial_acc_merge !acc blocks.(b)
  done;
  stats_of_acc ~trials:ntr ~truth !acc

let map_trials_par ?pool ~trials ~seed body =
  if trials < 0 then invalid_arg "Harness.map_trials_par: negative trials";
  let master = Gus_util.Rng.create seed in
  let out = Array.make trials None in
  let prog = progress_start trials in
  let run_range lo hi =
    for t = lo to hi - 1 do
      out.(t) <- Some (body (Gus_util.Rng.derive master t) t);
      progress_tick prog
    done
  in
  let module Pool = Gus_util.Pool in
  (match pool with
  | Some p when Pool.is_live p && Pool.size p > 1 && trials > 1 ->
      Pool.run_chunks p ~lo:0 ~hi:trials run_range
  | _ -> run_range 0 trials);
  progress_finish prog;
  Array.map
    (function Some x -> x | None -> assert false)
    out

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let median_time_us ?(repeats = 9) f =
  let times =
    Array.init repeats (fun _ ->
        let _, dt = time f in
        dt *. 1e6)
  in
  Array.sort compare times;
  times.(repeats / 2)

let cache : (float, Database.t) Hashtbl.t = Hashtbl.create 4

let db_cached ~scale =
  match Hashtbl.find_opt cache scale with
  | Some db -> db
  | None ->
      let db = Gus_tpch.Tpch.generate ~seed:20130630 ~scale () in
      Hashtbl.add cache scale db;
      db
