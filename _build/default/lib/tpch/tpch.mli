(** Deterministic synthetic TPC-H-style data.

    Stands in for the paper's TPC-H dbgen database (see DESIGN.md's
    substitution table): same star-ish schema (customer → orders →
    lineitem, plus part and supplier dimensions), same cardinality ratios
    (1 : 10 : ~40 per customer), and knobs for value skew so the accuracy
    experiments can exercise both benign and heavy-tailed aggregates.

    [scale = 1.0] produces 1 500 customers / 15 000 orders / ≈60 000
    lineitems — laptop-sized; the paper's 150 000-order example is
    [scale = 10.0]. *)

type config = {
  customers_per_scale : int;  (** default 1500 *)
  orders_per_customer : int;  (** default 10 *)
  max_lines_per_order : int;  (** default 7, uniform 1..max *)
  parts_per_scale : int;  (** default 2000 *)
  suppliers_per_scale : int;  (** default 100 *)
  part_skew : float;
      (** Zipf exponent for part popularity in lineitem; 0 = uniform *)
  price_skew : float;
      (** Pareto shape for extended prices; larger = lighter tail;
          [infinity] = uniform prices *)
}

val default_config : config

val generate : ?config:config -> seed:int -> scale:float -> unit -> Gus_relational.Database.t
(** Relations registered: [customer], [orders], [lineitem], [part],
    [supplier].  Deterministic in [(config, seed, scale)]. *)

val customer_schema : Gus_relational.Schema.t
val orders_schema : Gus_relational.Schema.t
val lineitem_schema : Gus_relational.Schema.t
val part_schema : Gus_relational.Schema.t
val supplier_schema : Gus_relational.Schema.t
