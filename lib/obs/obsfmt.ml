(* Shared rendering helpers for the observability exports (journal
   NDJSON, Prometheus exposition).  Kept here because Gus_obs sits below
   Gus_service in the dependency order and cannot reuse its JSON
   printer — but the float contract must be the same: shortest
   representation that parses back to the same bits, so a value that
   survives an export → parse cycle is bit-identical.  The replay
   bit-identity guarantee rests on this. *)

let float_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

(* JSON has no literal for non-finite numbers; the journal needs them
   (a zero estimate makes the relative CI half-width infinite), so they
   are encoded as strings the parser side maps back. *)
let float_json v =
  if Float.is_finite v then float_to_string v
  else if Float.is_nan v then "\"nan\""
  else if v > 0. then "\"inf\""
  else "\"-inf\""

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'
