lib/estimator/sbox.ml: Array Expr Float Gus_core Gus_relational Gus_sampling Gus_stats Gus_util List Logs Moments Printf Relation String
