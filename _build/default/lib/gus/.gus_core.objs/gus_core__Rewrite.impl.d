lib/gus/rewrite.ml: Array Database Gus Gus_relational Gus_sampling Lineage List Printf Relation Splan String
