lib/experiments/exp_subsample.ml: Gus_core Gus_estimator Gus_relational Gus_stats Gus_util Harness Printf Relation
