lib/relational/ops.ml: Array Expr Gus_util Hashtbl Lineage List Option Printf Relation Schema Tuple Value
