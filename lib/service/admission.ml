(* Admission control for the concurrent server: a thread-safe in-flight
   counter plus a ring of recent request latencies, combined into one
   overload factor that decides Admit / Shed / reject per request.

   The shape of the policy is the paper's Section-8 load shedding
   transplanted from stream windows to a request server: when the server
   cannot keep up, do NOT queue (latency explodes) and do NOT drop
   requests silently — answer every request from a smaller sample whose
   per-relation rates are chosen by Shedding.optimize_rates to minimize
   the estimate's variance under the reduced budget.  The response is
   still SOA-sound: an honest estimate with an honestly wider CI.

   Thread model: [enter] runs on connection reader threads (so queued
   work counts as in flight and backpressure starts at enqueue time, not
   at execution time); [leave] runs wherever the response finished.  All
   state is behind one mutex — these are tiny critical sections next to
   query execution. *)

module Metrics = Gus_obs.Metrics

let m_shed = Metrics.counter "shed.decisions"
let m_rejected = Metrics.counter "shed.rejected"
let m_admitted = Metrics.counter "shed.admitted"
let g_inflight = Metrics.gauge "shed.inflight"
let g_overload = Metrics.gauge "shed.overload"

type decision = Admit | Shed of float

type t = {
  max_inflight : int;
  session_inflight : int;
  shed_start : int option;
  slo_p99_ms : float option;
  fixed_overload : float option;
  lock : Mutex.t;
  mutable inflight : int;
  lat_ms : float array; (* ring of recent end-to-end latencies *)
  mutable lat_n : int; (* total observed (ring holds min lat_n cap) *)
}

type ticket = { t0_ns : int }

let lat_cap = 256

let create ?(max_inflight = 64) ?(session_inflight = 8) ?shed_start
    ?slo_p99_ms ?fixed_overload () =
  if max_inflight < 1 then invalid_arg "Admission.create: max_inflight < 1";
  if session_inflight < 1 then
    invalid_arg "Admission.create: session_inflight < 1";
  (match shed_start with
  | Some s when s < 1 -> invalid_arg "Admission.create: shed_start < 1"
  | _ -> ());
  { max_inflight;
    session_inflight;
    shed_start;
    slo_p99_ms;
    fixed_overload;
    lock = Mutex.create ();
    inflight = 0;
    lat_ms = Array.make lat_cap 0.0;
    lat_n = 0 }

let max_inflight t = t.max_inflight
let session_inflight t = t.session_inflight
let inflight t = Mutex.protect t.lock (fun () -> t.inflight)

(* p99 over the ring, by sorting a copy — at most 256 floats, and only
   computed when latency-based shedding is configured. *)
let p99_locked t =
  let n = min t.lat_n lat_cap in
  if n < 8 then None (* too few samples to call it a percentile *)
  else begin
    let a = Array.sub t.lat_ms 0 n in
    Array.sort compare a;
    Some a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
  end

let p99_ms t = Mutex.protect t.lock (fun () -> p99_locked t)

(* Overload factor: how far past sustainable the server is, >= 1 means
   at or past the shed threshold.  The max of the configured signals —
   queue depth relative to [shed_start] and recent p99 relative to the
   latency SLO — capped so a latency spike cannot drive capacity to
   zero. *)
let overload_cap = 16.0

let overload_locked t =
  match t.fixed_overload with
  | Some f -> f
  | None ->
      let inflight_factor =
        match t.shed_start with
        | Some s -> float_of_int t.inflight /. float_of_int s
        | None -> 0.0
      in
      let latency_factor =
        match (t.slo_p99_ms, p99_locked t) with
        | Some slo, Some p99 when slo > 0.0 -> p99 /. slo
        | _ -> 0.0
      in
      Float.min overload_cap (Float.max inflight_factor latency_factor)

let overload t = Mutex.protect t.lock (fun () -> overload_locked t)

let enter t =
  Mutex.protect t.lock (fun () ->
      if t.inflight >= t.max_inflight then begin
        Metrics.incr m_rejected;
        Error
          (Printf.sprintf "server at max in-flight (%d)" t.max_inflight)
      end
      else begin
        t.inflight <- t.inflight + 1;
        Metrics.set_gauge g_inflight (float_of_int t.inflight);
        let f = overload_locked t in
        Metrics.set_gauge g_overload f;
        let d =
          if f > 1.0 then begin
            Metrics.incr m_shed;
            Shed f
          end
          else begin
            Metrics.incr m_admitted;
            Admit
          end
        in
        Ok ({ t0_ns = Gus_obs.Trace.now_ns () }, d)
      end)

let leave t ticket =
  let ms = float_of_int (Gus_obs.Trace.now_ns () - ticket.t0_ns) /. 1e6 in
  Mutex.protect t.lock (fun () ->
      t.inflight <- max 0 (t.inflight - 1);
      Metrics.set_gauge g_inflight (float_of_int t.inflight);
      t.lat_ms.(t.lat_n mod lat_cap) <- ms;
      t.lat_n <- t.lat_n + 1)

(* ---- Section-8 rate selection for one shed execution ----

   The prepared plan samples relations [current = (rel, q_rel)] at
   effective rates q (Prepared.sampling_rates); its sustainable cost is
   sum_i C_i * q_i sampled tuples.  Under overload f we grant this
   execution a budget of (cost / f) and re-split it across the sampled
   relations with the paper's variance-minimizing grid search, seeded
   with the previous execution's Y-hat moments.  Without moments (first
   execution of a handle), or past the 3-stream exhaustive-search limit,
   fall back to the proportional split — still SOA-sound, just not
   variance-optimal. *)

module Shedding = Gus_online.Shedding

let min_rate = 1e-6

let shed_rates ~overload ~order ~card ~current ?y () =
  if current = [] then [] (* nothing sampled: nothing to degrade *)
  else begin
    let arrivals = List.map (fun (rel, _) -> (rel, card rel)) current in
    let cost =
      List.fold_left2
        (fun acc (_, n) (_, q) -> acc +. (float_of_int n *. q))
        0.0 arrivals current
    in
    let f = Float.max 1.0 overload in
    let capacity = max 1 (int_of_float (cost /. f)) in
    let k = List.length current in
    let rates =
      match y with
      | Some y when k >= 1 && k <= 3 ->
          fst
            (Shedding.optimize_rates
               ~gus_of:(Shedding.gus_of_rates order)
               ~y ~arrivals ~capacity ())
      | _ -> Shedding.proportional_rates ~arrivals ~capacity
    in
    (* Clamp: a zero rate would turn the relation's a-value to 0 and
       fail the soundness lint; shedding must degrade, never destroy. *)
    List.map
      (fun (rel, r) -> (rel, Float.max min_rate (Float.min 1.0 r)))
      rates
  end
